//! Determinism contract of the accelerated CURE merge loop
//! (`dbs_cluster::hierarchical`): the heap + rep-index core must reproduce
//! the retained reference loop's `Clustering` — assignments, member lists,
//! means, and representative points — **bit for bit**, for every
//! dimensionality and thread count. The merge sequence is fully determined
//! by the lowest-cluster-id tie-break, so any divergence (a different merge
//! order, a trim firing at a different time, a last-ulp distance
//! disagreement) shows up as a hard output mismatch here.

use std::num::NonZeroUsize;

use dbs_cluster::{
    hierarchical_cluster, hierarchical_cluster_obs, hierarchical_cluster_reference,
    partitioned_cluster, sample_target_size, HierarchicalConfig,
};
use dbs_core::obs::{Counter, Recorder};
use dbs_core::rng::seeded;
use dbs_core::Dataset;
use proptest::prelude::*;
use rand::Rng;

const DIMS: [usize; 3] = [2, 3, 5];
/// High-dimensional parity dims: tight blobs at these dims are the
/// candidate-cache stress case (the pre-candidate scheme degenerated here —
/// the 16-d merge-loop cliff).
const HIGH_DIMS: [usize; 2] = [12, 16];
const THREADS: [usize; 3] = [1, 2, 7];

fn nz(t: usize) -> NonZeroUsize {
    NonZeroUsize::new(t).expect("positive thread count")
}

/// A few gaussian-ish blobs plus uniform strays, so merge, trim, and
/// stale-pointer refresh paths all run. Blob spreads differ so distance
/// ties and trim triggers land at varied scales.
fn workload(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    let blobs = 4usize;
    let strays = n / 12;
    let mut ds = Dataset::with_capacity(dim, n + strays);
    let mut p = vec![0.0f64; dim];
    for i in 0..n {
        let b = i % blobs;
        let center = (b as f64 + 0.5) / blobs as f64;
        let spread = 0.03 + 0.02 * b as f64;
        for x in p.iter_mut() {
            *x = center + (rng.gen::<f64>() - 0.5) * spread;
        }
        ds.push(&p).expect("fixed dim");
    }
    for _ in 0..strays {
        for x in p.iter_mut() {
            *x = rng.gen::<f64>();
        }
        ds.push(&p).expect("fixed dim");
    }
    ds
}

/// Tight high-dimensional blobs on the unit diagonal (the shard bench's
/// mixture shape): intra-blob distances concentrate hard with dimension, so
/// closest pointers are consumed in bursts and the merge loop leans on the
/// candidate cache for nearly every merge.
fn tight_blobs(n: usize, dim: usize, seed: u64) -> Dataset {
    let blobs = 8usize;
    let mut rng = seeded(seed);
    let mut ds = Dataset::with_capacity(dim, n);
    let mut p = vec![0.0f64; dim];
    for i in 0..n {
        let center = (((i % blobs) as f64) + 0.5) / blobs as f64;
        for x in p.iter_mut() {
            *x = center + (rng.gen::<f64>() - 0.5) * 0.03;
        }
        ds.push(&p).expect("fixed dim");
    }
    ds
}

/// Assignments plus per-cluster (members, mean bits, representative bits).
type Fingerprint = (Vec<usize>, Vec<(Vec<usize>, Vec<u64>, Vec<Vec<u64>>)>);

/// Flattens a `Clustering` into comparable bit patterns.
fn fingerprint(c: &dbs_cluster::Clustering) -> Fingerprint {
    let clusters = c
        .clusters
        .iter()
        .map(|fc| {
            (
                fc.members.clone(),
                fc.mean.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                fc.representatives
                    .iter()
                    .map(|r| r.iter().map(|x| x.to_bits()).collect::<Vec<_>>())
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    (c.assignments.clone(), clusters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Accelerated core ≡ reference loop, bit for bit, across dims and
    /// thread counts — with trimming active and disabled.
    #[test]
    fn accelerated_core_is_bit_identical_to_reference(seed in 0u64..10_000) {
        for dim in DIMS {
            let n = if dim == 2 { 600 } else { 300 };
            let data = workload(n, dim, seed ^ (dim as u64) << 32);
            for trim_min_size in [3usize, 0] {
                let mut base = HierarchicalConfig::paper_defaults(4);
                base.trim_min_size = trim_min_size;
                let reference = hierarchical_cluster_reference(
                    &data,
                    &base.clone().with_parallelism(nz(1)),
                )
                .expect("reference clustering");
                let want = fingerprint(&reference);
                for t in THREADS {
                    let fast = hierarchical_cluster(
                        &data,
                        &base.clone().with_parallelism(nz(t)),
                    )
                    .expect("accelerated clustering");
                    prop_assert_eq!(
                        &fingerprint(&fast),
                        &want,
                        "dim {} trim_min_size {} threads {}",
                        dim,
                        trim_min_size,
                        t
                    );
                }
            }
        }
    }

    /// Degenerate scalable paths ≡ the single-phase loop, bit for bit:
    /// partitioned CURE with `p = 1` (both a trivial and a real phase
    /// split via `pre_cluster_factor`), and the sample-fed pipeline at
    /// `sample_frac = 1.0` — a full-size "sample" clustered by the
    /// partitioned path with no map-back, exactly what the CLI runs.
    #[test]
    fn degenerate_scalable_paths_match_single_phase(seed in 0u64..10_000) {
        for dim in DIMS {
            let n = if dim == 2 { 500 } else { 250 };
            let data = workload(n, dim, seed ^ (dim as u64) << 16);
            prop_assert_eq!(sample_target_size(data.len(), 1.0).expect("valid frac"), data.len());
            let base = HierarchicalConfig::paper_defaults(4);
            let single = hierarchical_cluster(
                &data,
                &base.clone().with_parallelism(nz(1)),
            )
            .expect("single-phase clustering");
            let want = fingerprint(&single);
            for t in THREADS {
                for q in [1usize, 4] {
                    let cfg = base
                        .clone()
                        .with_parallelism(nz(t))
                        .with_partitions(1)
                        .with_pre_cluster_factor(q);
                    let part = partitioned_cluster(&data, &cfg).expect("partitioned clustering");
                    prop_assert_eq!(
                        &fingerprint(&part),
                        &want,
                        "dim {} threads {} pre_cluster_factor {}",
                        dim,
                        t,
                        q
                    );
                }
            }
        }
    }

    /// High-dimensional tight blobs: accelerated core ≡ reference loop, bit
    /// for bit, at dims {12, 16} — the workload where consumed closest
    /// pointers dominate and every answer flows through the candidate cache.
    #[test]
    fn high_dim_tight_blobs_are_bit_identical(seed in 0u64..10_000) {
        for dim in HIGH_DIMS {
            let data = tight_blobs(280, dim, seed ^ (dim as u64) << 24);
            for trim_min_size in [3usize, 0] {
                let mut base = HierarchicalConfig::paper_defaults(8);
                base.trim_min_size = trim_min_size;
                let reference = hierarchical_cluster_reference(
                    &data,
                    &base.clone().with_parallelism(nz(1)),
                )
                .expect("reference clustering");
                let want = fingerprint(&reference);
                for t in THREADS {
                    let fast = hierarchical_cluster(
                        &data,
                        &base.clone().with_parallelism(nz(t)),
                    )
                    .expect("accelerated clustering");
                    prop_assert_eq!(
                        &fingerprint(&fast),
                        &want,
                        "dim {} trim_min_size {} threads {}",
                        dim,
                        trim_min_size,
                        t
                    );
                }
            }
        }
    }
}

/// All points exactly equal in 16 dimensions: every pairwise distance is
/// 0.0 and every bbox lower bound is 0, so the merge sequence is pure
/// lexicographic tie-breaking through the candidate path (the prune slack
/// multiplies a zero bound and can never skip a pair; candidate fallback
/// must return the same lowest-id incumbent the reference scan picks).
#[test]
fn all_duplicate_points_16d_bit_identical() {
    let rows = vec![vec![0.375; 16]; 80];
    let data = Dataset::from_rows(&rows).expect("valid rows");
    for trim_min_size in [3usize, 0] {
        let mut base = HierarchicalConfig::paper_defaults(4);
        base.trim_min_size = trim_min_size;
        let reference =
            hierarchical_cluster_reference(&data, &base.clone().with_parallelism(nz(1)))
                .expect("reference clustering");
        let want = fingerprint(&reference);
        for t in THREADS {
            let fast = hierarchical_cluster(&data, &base.clone().with_parallelism(nz(t)))
                .expect("accelerated clustering");
            assert_eq!(
                fingerprint(&fast),
                want,
                "trim_min_size {trim_min_size} threads {t}"
            );
        }
    }
}

/// Regression gate for the 16-d merge-loop cliff, in counters rather than
/// wall clock: on a tight 16-d blob the full candidate-list rebuilds (the
/// broadcast rescans that survive candidate fallback) must stay
/// sub-quadratic — doubling n from 800 to 1600 must grow rebuilds by well
/// under 4x, and rebuilds must stay a small multiple of the merge count.
/// The pre-candidate loop recomputed via the index on *every* consumed
/// pointer, which this bound rejects.
#[test]
fn high_dim_candidate_rebuilds_stay_subquadratic() {
    let rebuilds_and_merges = |n: usize| {
        let data = tight_blobs(n, 16, 4242);
        let rec = Recorder::enabled();
        let cfg = HierarchicalConfig::paper_defaults(8).with_parallelism(nz(1));
        hierarchical_cluster_obs(&data, &cfg, &rec).expect("accelerated clustering");
        (
            rec.counter(Counter::CandidateRebuilds),
            rec.counter(Counter::ClusterMerges),
            rec.counter(Counter::CandidateHits),
        )
    };
    let (r800, m800, h800) = rebuilds_and_merges(800);
    let (r1600, m1600, h1600) = rebuilds_and_merges(1600);
    assert!(h800 > 0 && h1600 > 0, "candidate cache never hit");
    // Rebuild growth tracks the merge count (linear in n), not its square.
    assert!(
        r1600 < r800 * 3,
        "rebuilds grew {r800} -> {r1600} when doubling n: super-linear"
    );
    // Absolute bound: a handful of rebuilds per merge (u's own rebuild plus
    // occasional cache exhaustion), not one per live cluster per merge.
    assert!(
        r800 < m800 * 6 && r1600 < m1600 * 6,
        "rebuilds per merge too high: {r800}/{m800}, {r1600}/{m1600}"
    );
}
