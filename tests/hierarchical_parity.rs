//! Determinism contract of the accelerated CURE merge loop
//! (`dbs_cluster::hierarchical`): the heap + rep-index core must reproduce
//! the retained reference loop's `Clustering` — assignments, member lists,
//! means, and representative points — **bit for bit**, for every
//! dimensionality and thread count. The merge sequence is fully determined
//! by the lowest-cluster-id tie-break, so any divergence (a different merge
//! order, a trim firing at a different time, a last-ulp distance
//! disagreement) shows up as a hard output mismatch here.

use std::num::NonZeroUsize;

use dbs_cluster::{
    hierarchical_cluster, hierarchical_cluster_reference, partitioned_cluster, sample_target_size,
    HierarchicalConfig,
};
use dbs_core::rng::seeded;
use dbs_core::Dataset;
use proptest::prelude::*;
use rand::Rng;

const DIMS: [usize; 3] = [2, 3, 5];
const THREADS: [usize; 3] = [1, 2, 7];

fn nz(t: usize) -> NonZeroUsize {
    NonZeroUsize::new(t).expect("positive thread count")
}

/// A few gaussian-ish blobs plus uniform strays, so merge, trim, and
/// stale-pointer refresh paths all run. Blob spreads differ so distance
/// ties and trim triggers land at varied scales.
fn workload(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    let blobs = 4usize;
    let strays = n / 12;
    let mut ds = Dataset::with_capacity(dim, n + strays);
    let mut p = vec![0.0f64; dim];
    for i in 0..n {
        let b = i % blobs;
        let center = (b as f64 + 0.5) / blobs as f64;
        let spread = 0.03 + 0.02 * b as f64;
        for x in p.iter_mut() {
            *x = center + (rng.gen::<f64>() - 0.5) * spread;
        }
        ds.push(&p).expect("fixed dim");
    }
    for _ in 0..strays {
        for x in p.iter_mut() {
            *x = rng.gen::<f64>();
        }
        ds.push(&p).expect("fixed dim");
    }
    ds
}

/// Assignments plus per-cluster (members, mean bits, representative bits).
type Fingerprint = (Vec<usize>, Vec<(Vec<usize>, Vec<u64>, Vec<Vec<u64>>)>);

/// Flattens a `Clustering` into comparable bit patterns.
fn fingerprint(c: &dbs_cluster::Clustering) -> Fingerprint {
    let clusters = c
        .clusters
        .iter()
        .map(|fc| {
            (
                fc.members.clone(),
                fc.mean.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                fc.representatives
                    .iter()
                    .map(|r| r.iter().map(|x| x.to_bits()).collect::<Vec<_>>())
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    (c.assignments.clone(), clusters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Accelerated core ≡ reference loop, bit for bit, across dims and
    /// thread counts — with trimming active and disabled.
    #[test]
    fn accelerated_core_is_bit_identical_to_reference(seed in 0u64..10_000) {
        for dim in DIMS {
            let n = if dim == 2 { 600 } else { 300 };
            let data = workload(n, dim, seed ^ (dim as u64) << 32);
            for trim_min_size in [3usize, 0] {
                let mut base = HierarchicalConfig::paper_defaults(4);
                base.trim_min_size = trim_min_size;
                let reference = hierarchical_cluster_reference(
                    &data,
                    &base.clone().with_parallelism(nz(1)),
                )
                .expect("reference clustering");
                let want = fingerprint(&reference);
                for t in THREADS {
                    let fast = hierarchical_cluster(
                        &data,
                        &base.clone().with_parallelism(nz(t)),
                    )
                    .expect("accelerated clustering");
                    prop_assert_eq!(
                        &fingerprint(&fast),
                        &want,
                        "dim {} trim_min_size {} threads {}",
                        dim,
                        trim_min_size,
                        t
                    );
                }
            }
        }
    }

    /// Degenerate scalable paths ≡ the single-phase loop, bit for bit:
    /// partitioned CURE with `p = 1` (both a trivial and a real phase
    /// split via `pre_cluster_factor`), and the sample-fed pipeline at
    /// `sample_frac = 1.0` — a full-size "sample" clustered by the
    /// partitioned path with no map-back, exactly what the CLI runs.
    #[test]
    fn degenerate_scalable_paths_match_single_phase(seed in 0u64..10_000) {
        for dim in DIMS {
            let n = if dim == 2 { 500 } else { 250 };
            let data = workload(n, dim, seed ^ (dim as u64) << 16);
            prop_assert_eq!(sample_target_size(data.len(), 1.0).expect("valid frac"), data.len());
            let base = HierarchicalConfig::paper_defaults(4);
            let single = hierarchical_cluster(
                &data,
                &base.clone().with_parallelism(nz(1)),
            )
            .expect("single-phase clustering");
            let want = fingerprint(&single);
            for t in THREADS {
                for q in [1usize, 4] {
                    let cfg = base
                        .clone()
                        .with_parallelism(nz(t))
                        .with_partitions(1)
                        .with_pre_cluster_factor(q);
                    let part = partitioned_cluster(&data, &cfg).expect("partitioned clustering");
                    prop_assert_eq!(
                        &fingerprint(&part),
                        &want,
                        "dim {} threads {} pre_cluster_factor {}",
                        dim,
                        t,
                        q
                    );
                }
            }
        }
    }
}
