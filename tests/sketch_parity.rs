//! The streaming sketch determinism contract: a Count-Min density sketch
//! built in one sequential pass, built incrementally, built by the chunked
//! parallel executor at any thread count, or assembled by merging
//! per-piece sketches in any order over any storage backing, is the SAME
//! sketch — bit for bit, counters and all. Counter addition is commutative
//! and associative, so the proof obligation is that every ingest route
//! really reduces to the same multiset of counter increments.

use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use dbs_core::obs::{Counter, Recorder};
use dbs_core::par::CHUNK_POINTS;
use dbs_core::shard::{write_shards_with, ShardedSource};
use dbs_core::Dataset;
use dbs_density::{DensityEstimator, DensitySketch, SketchConfig};
use dbs_integration_tests::clustered;
use proptest::prelude::*;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "dbs_sketch_parity_{}_{}_{}",
        std::process::id(),
        name,
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&p).ok();
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn threads(t: usize) -> NonZeroUsize {
    NonZeroUsize::new(t).unwrap()
}

/// Splits `ds` at `bounds` and fits one sketch per piece.
fn piece_sketches(ds: &Dataset, bounds: &[usize], cfg: &SketchConfig) -> Vec<DensitySketch> {
    bounds
        .windows(2)
        .filter(|w| w[0] < w[1])
        .map(|w| {
            let idx: Vec<usize> = (w[0]..w[1]).collect();
            DensitySketch::fit(&ds.select(&idx), cfg).unwrap()
        })
        .collect()
}

#[test]
fn parallel_fit_over_shards_matches_sequential_at_thread_counts() {
    // A multi-shard, multi-chunk source: the executor hands out 4096-point
    // chunks in whatever order threads grab them, and the shard engine
    // adds its own file boundaries. The sketch must not care.
    let ds = clustered(10_000, 3, 42).data;
    let cfg = SketchConfig::new(4, 1 << 12);
    let whole = DensitySketch::fit(&ds, &cfg).unwrap();

    let dir = tmp_dir("shards");
    write_shards_with(&dir, &ds, 7, CHUNK_POINTS).unwrap();
    let sharded = ShardedSource::open(&dir).unwrap();
    assert_eq!(DensitySketch::fit(&sharded, &cfg).unwrap(), whole);

    for t in [1usize, 2, 7] {
        let rec = Recorder::enabled();
        let par = DensitySketch::fit_obs(&sharded, &cfg, threads(t), &rec).unwrap();
        assert_eq!(par, whole, "threads {t} diverged from sequential fit");
        assert_eq!(rec.counter(Counter::SketchUpdates), 10_000);
        assert_eq!(
            rec.counter(Counter::SketchMerges),
            (10_000usize).div_ceil(CHUNK_POINTS) as u64
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_order_does_not_matter_for_merging() {
    // Per-shard sketches merged forward, reversed, and odd-even
    // interleaved all equal the single-pass sketch: the merge really is
    // commutative and associative, not just "deterministic in chunk
    // order".
    let ds = clustered(9_000, 2, 5).data;
    let cfg = SketchConfig::new(3, 1 << 10);
    let whole = DensitySketch::fit(&ds, &cfg).unwrap();
    let bounds = [0usize, 2048, 4096, 6144, 8192, 9000];
    let pieces = piece_sketches(&ds, &bounds, &cfg);
    let n = pieces.len();
    let orders: Vec<Vec<usize>> = vec![
        (0..n).collect(),
        (0..n).rev().collect(),
        (0..n).step_by(2).chain((1..n).step_by(2)).collect(),
    ];
    for order in orders {
        let mut merged = DensitySketch::new(2, &cfg).unwrap();
        for &i in &order {
            merged.merge(&pieces[i]).unwrap();
        }
        assert_eq!(merged, whole, "merge order {order:?} diverged");
    }
}

#[test]
fn merged_sketch_is_the_same_estimator() {
    // Equality of the struct implies equality of every density the trait
    // serves; spot-check that the query path agrees bit for bit anyway.
    let ds = clustered(6_000, 2, 11).data;
    let cfg = SketchConfig::default();
    let whole = DensitySketch::fit(&ds, &cfg).unwrap();
    let pieces = piece_sketches(&ds, &[0, 1000, 6000], &cfg);
    let mut merged = DensitySketch::new(2, &cfg).unwrap();
    for p in &pieces {
        merged.merge(p).unwrap();
    }
    for i in 0..50 {
        let x = [0.013 * i as f64, 1.0 - 0.019 * i as f64];
        assert_eq!(whole.density(&x).to_bits(), merged.density(&x).to_bits());
    }
    assert_eq!(
        whole.summary_normalizer(1.0, 1e-9).unwrap().to_bits(),
        merged.summary_normalizer(1.0, 1e-9).unwrap().to_bits()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary unit-cube datasets, configs, split points, and thread
    /// counts: piecewise-merged sketches (both merge orders) and the
    /// parallel fit are bit-identical to the sequential single-pass fit.
    #[test]
    fn chunked_merge_is_bit_identical(
        rows in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 2..=2),
            32..3000,
        ),
        t in 1usize..8,
        raw_cuts in prop::collection::vec(0usize..3000, 0..4),
        seed in 0u64..64,
    ) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let cfg = SketchConfig {
            grids: 3,
            slots: 512,
            resolution: None,
            domain: None,
            seed,
        };
        let whole = DensitySketch::fit(&ds, &cfg).unwrap();

        let mut bounds: Vec<usize> = raw_cuts.iter().map(|c| c % rows.len()).collect();
        bounds.push(0);
        bounds.push(rows.len());
        bounds.sort_unstable();
        bounds.dedup();
        let pieces = piece_sketches(&ds, &bounds, &cfg);
        for forward in [true, false] {
            let order: Vec<usize> = if forward {
                (0..pieces.len()).collect()
            } else {
                (0..pieces.len()).rev().collect()
            };
            let mut merged = DensitySketch::new(2, &cfg).unwrap();
            for &i in &order {
                merged.merge(&pieces[i]).unwrap();
            }
            prop_assert_eq!(&merged, &whole);
        }

        let par = DensitySketch::fit_obs(&ds, &cfg, threads(t), &Recorder::disabled()).unwrap();
        prop_assert_eq!(&par, &whole);
    }
}
