//! Contract tests every [`DensityEstimator`] backend must satisfy — the
//! §2.1 requirement that `∫_R f ≈ |D ∩ R|`, plus non-negativity, frequency
//! scaling, batch/scalar bit-parity, and thread-count determinism. Run
//! against all five backends on the same data, fitted through the
//! [`EstimatorSpec`] factory (the same path the CLI's `--estimator` uses).

use std::num::NonZeroUsize;

use dbs_core::{BoundingBox, Dataset};
use dbs_density::{batch_densities, DensityEstimator, EstimatorSpec};
use dbs_integration_tests::{clustered, uniform_cube};

/// Specs for all five backends, parameterized as the CLI would parse them.
/// Generous hash table: few collisions, so the contract holds; half the
/// wavelet coefficients kept: lossy but structure-preserving.
const SPECS: [&str; 5] = [
    "kde:500",
    "grid:16",
    "hashgrid:16",
    "wavelet:4:128",
    "agrid:8",
];

fn backends(data: &Dataset, dim: usize) -> Vec<(String, Box<dyn DensityEstimator + Sync>)> {
    SPECS
        .iter()
        .map(|spec| {
            let est = EstimatorSpec::parse(spec)
                .unwrap()
                .with_seed(7)
                .with_domain(BoundingBox::unit(dim))
                .fit(data)
                .unwrap();
            (spec.to_string(), est)
        })
        .collect()
}

#[test]
fn density_is_nonnegative_everywhere() {
    let synth = clustered(10_000, 2, 1);
    for (name, est) in backends(&synth.data, 2) {
        let mut x = [0.0f64; 2];
        for i in 0..30 {
            for j in 0..30 {
                x[0] = i as f64 / 29.0;
                x[1] = j as f64 / 29.0;
                assert!(est.density(&x) >= 0.0, "{name} negative at {x:?}");
            }
        }
    }
}

#[test]
fn dataset_size_is_reported() {
    let synth = clustered(10_000, 2, 2);
    for (name, est) in backends(&synth.data, 2) {
        assert_eq!(est.dataset_size(), 10_000.0, "{name}");
        assert_eq!(est.dim(), 2, "{name}");
        assert!((est.average_density() - 10_000.0).abs() < 1e-6, "{name}");
    }
}

#[test]
fn box_integral_approximates_point_count() {
    // §2.1: for a given region R, the integral approximates |D ∩ R|.
    // Probe with half-domain boxes (extended outward past the domain so
    // boundary kernel mass stays in): each has a single interior edge, so
    // kernel smoothing can only leak across one side and the counts are
    // large enough for a tight relative bound.
    let synth = clustered(20_000, 2, 3);
    let halves = [
        BoundingBox::new(vec![-0.5, -0.5], vec![0.5, 1.5]), // left
        BoundingBox::new(vec![0.5, -0.5], vec![1.5, 1.5]),  // right
        BoundingBox::new(vec![-0.5, -0.5], vec![1.5, 0.5]), // bottom
        BoundingBox::new(vec![-0.5, 0.5], vec![1.5, 1.5]),  // top
    ];
    for (name, est) in backends(&synth.data, 2) {
        for probe in &halves {
            let truth = synth.data.iter().filter(|p| probe.contains(p)).count() as f64;
            let got = est.integrate_box(probe);
            let rel = (got - truth).abs() / truth.max(1.0);
            assert!(
                rel < 0.2,
                "{name}: half-domain integral {got} vs count {truth}"
            );
        }
    }
}

#[test]
fn whole_domain_integral_is_n() {
    let data = uniform_cube(10_000, 2, 4);
    // Integrate over a widened box so boundary kernel mass is captured;
    // backends supported on the domain read the same as the unit box.
    let wide = BoundingBox::new(vec![-0.5, -0.5], vec![1.5, 1.5]);
    for (name, est) in backends(&data, 2) {
        let got = est.integrate_box(&wide);
        let rel = (got - 10_000.0).abs() / 10_000.0;
        assert!(rel < 0.05, "{name}: total mass {got}");
    }
}

#[test]
fn average_density_is_consistent_with_size_and_volume() {
    let synth = clustered(10_000, 2, 9);
    for (name, est) in backends(&synth.data, 2) {
        // Unit domain: average density must equal n / volume = n.
        let avg = est.average_density();
        let expected = est.dataset_size() / BoundingBox::unit(2).volume();
        assert!(
            (avg - expected).abs() < 1e-6 * expected,
            "{name}: average {avg} vs n/vol {expected}"
        );
    }
}

#[test]
fn batch_is_bit_identical_to_per_point() {
    let synth = clustered(10_000, 2, 10);
    // Queries both inside and outside the domain.
    let mut queries = Dataset::new(2);
    for i in 0..500 {
        let t = i as f64 / 499.0;
        queries.push(&[t * 1.4 - 0.2, 1.2 - t * 1.4]).unwrap();
    }
    for (name, est) in backends(&synth.data, 2) {
        let mut out = vec![0.0f64; queries.len()];
        let block = dbs_core::PointBlock::from_dataset(&queries, 0..queries.len());
        est.densities_into(&block, &mut out);
        for (i, &got) in out.iter().enumerate() {
            let want = est.density(queries.point(i));
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{name}: batch density {got} != per-point {want} at query {i}"
            );
        }
    }
}

#[test]
fn box_integral_is_nonnegative_and_bounded_by_n() {
    let synth = clustered(10_000, 2, 11);
    let probes = [
        BoundingBox::new(vec![0.1, 0.1], vec![0.4, 0.7]),
        BoundingBox::new(vec![0.33, 0.21], vec![0.34, 0.9]),
        BoundingBox::new(vec![-0.5, -0.5], vec![1.5, 1.5]),
        BoundingBox::new(vec![0.7, 0.7], vec![0.70001, 0.70001]),
    ];
    for (name, est) in backends(&synth.data, 2) {
        for probe in &probes {
            let got = est.integrate_box(probe);
            assert!(got >= 0.0, "{name}: negative integral {got} over {probe:?}");
            // Allow a small quadrature/smoothing margin above n.
            assert!(
                got <= 10_000.0 * 1.05,
                "{name}: integral {got} exceeds dataset size over {probe:?}"
            );
        }
    }
}

#[test]
fn batch_densities_are_thread_count_invariant() {
    let synth = clustered(20_000, 2, 12);
    for (name, est) in backends(&synth.data, 2) {
        let baseline =
            batch_densities(est.as_ref(), &synth.data, NonZeroUsize::new(1).unwrap()).unwrap();
        for threads in [2usize, 7] {
            let got = batch_densities(
                est.as_ref(),
                &synth.data,
                NonZeroUsize::new(threads).unwrap(),
            )
            .unwrap();
            let same = baseline
                .iter()
                .zip(&got)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                same,
                "{name}: densities differ between 1 and {threads} threads"
            );
        }
    }
}

#[test]
fn uniform_data_has_flat_density() {
    let data = uniform_cube(50_000, 2, 6);
    for (name, est) in backends(&data, 2) {
        // Sample interior points; density should hover near n within a
        // modest band (away from boundary bias).
        let mut min_d = f64::INFINITY;
        let mut max_d: f64 = 0.0;
        for i in 0..20 {
            for j in 0..20 {
                let x = [0.2 + 0.6 * i as f64 / 19.0, 0.2 + 0.6 * j as f64 / 19.0];
                let d = est.density(&x);
                min_d = min_d.min(d);
                max_d = max_d.max(d);
            }
        }
        // A 500-kernel mixture has ~16 kernels overlapping any point, so
        // ~25% relative noise is expected; the band is a smoke check, not
        // a precision bound.
        assert!(
            min_d > 0.3 * 50_000.0 && max_d < 3.0 * 50_000.0,
            "{name}: density band [{min_d}, {max_d}] too far from n"
        );
    }
}

#[test]
fn clustered_data_has_contrast() {
    let synth = clustered(20_000, 2, 8);
    for (name, est) in backends(&synth.data, 2) {
        let inside = synth.regions[0].center();
        let in_density = est.density(&inside);
        // A point far from every region.
        let mut out = vec![0.0, 0.0];
        'search: for i in 0..40 {
            for j in 0..40 {
                let cand = vec![i as f64 / 39.0, j as f64 / 39.0];
                if synth
                    .regions
                    .iter()
                    .all(|r| r.inflate(0.08).dist_sq_to_point(&cand) > 0.0)
                {
                    out = cand;
                    break 'search;
                }
            }
        }
        let out_density = est.density(&out);
        assert!(
            in_density > 10.0 * (out_density + 1.0),
            "{name}: inside {in_density} vs outside {out_density}"
        );
    }
}
