//! Contract tests every [`DensityEstimator`] backend must satisfy — the
//! §2.1 requirement that `∫_R f ≈ |D ∩ R|`, plus non-negativity and
//! frequency scaling. Run against all three backends on the same data.

use dbs_core::{BoundingBox, Dataset};
use dbs_density::{
    DensityEstimator, GridEstimator, HashGridEstimator, KdeConfig, KernelDensityEstimator,
    WaveletEstimator,
};
use dbs_integration_tests::{clustered, uniform_cube};

fn backends(data: &Dataset, dim: usize) -> Vec<(String, Box<dyn DensityEstimator>)> {
    let kde_cfg = KdeConfig {
        num_centers: 500,
        domain: Some(BoundingBox::unit(dim)),
        seed: 7,
        ..Default::default()
    };
    vec![
        (
            "kde".into(),
            Box::new(KernelDensityEstimator::fit_dataset(data, &kde_cfg).unwrap())
                as Box<dyn DensityEstimator>,
        ),
        (
            "grid".into(),
            Box::new(GridEstimator::fit(data, BoundingBox::unit(dim), 16).unwrap()),
        ),
        (
            "hashgrid".into(),
            // Generous table: few collisions, so the contract holds.
            Box::new(HashGridEstimator::fit(data, BoundingBox::unit(dim), 16, 1 << 16).unwrap()),
        ),
        (
            "wavelet".into(),
            // Half the coefficients kept: lossy but structure-preserving.
            Box::new(WaveletEstimator::fit(data, BoundingBox::unit(dim), 4, 128).unwrap()),
        ),
    ]
}

#[test]
fn density_is_nonnegative_everywhere() {
    let synth = clustered(10_000, 2, 1);
    for (name, est) in backends(&synth.data, 2) {
        let mut x = [0.0f64; 2];
        for i in 0..30 {
            for j in 0..30 {
                x[0] = i as f64 / 29.0;
                x[1] = j as f64 / 29.0;
                assert!(est.density(&x) >= 0.0, "{name} negative at {x:?}");
            }
        }
    }
}

#[test]
fn dataset_size_is_reported() {
    let synth = clustered(10_000, 2, 2);
    for (name, est) in backends(&synth.data, 2) {
        assert_eq!(est.dataset_size(), 10_000.0, "{name}");
        assert_eq!(est.dim(), 2, "{name}");
        assert!((est.average_density() - 10_000.0).abs() < 1e-6, "{name}");
    }
}

#[test]
fn box_integral_approximates_point_count() {
    // §2.1: for a given region R, the integral approximates |D ∩ R|.
    // Probe with half-domain boxes (extended outward past the domain so
    // boundary kernel mass stays in): each has a single interior edge, so
    // kernel smoothing can only leak across one side and the counts are
    // large enough for a tight relative bound.
    let synth = clustered(20_000, 2, 3);
    let halves = [
        BoundingBox::new(vec![-0.5, -0.5], vec![0.5, 1.5]), // left
        BoundingBox::new(vec![0.5, -0.5], vec![1.5, 1.5]),  // right
        BoundingBox::new(vec![-0.5, -0.5], vec![1.5, 0.5]), // bottom
        BoundingBox::new(vec![-0.5, 0.5], vec![1.5, 1.5]),  // top
    ];
    for (name, est) in backends(&synth.data, 2) {
        for probe in &halves {
            let truth = synth.data.iter().filter(|p| probe.contains(p)).count() as f64;
            let got = est.integrate_box(probe);
            let rel = (got - truth).abs() / truth.max(1.0);
            assert!(
                rel < 0.2,
                "{name}: half-domain integral {got} vs count {truth}"
            );
        }
    }
}

#[test]
fn whole_domain_integral_is_n() {
    let data = uniform_cube(10_000, 2, 4);
    let kde_cfg = KdeConfig {
        num_centers: 500,
        domain: Some(BoundingBox::unit(2)),
        seed: 5,
        ..Default::default()
    };
    let kde = KernelDensityEstimator::fit_dataset(&data, &kde_cfg).unwrap();
    // Integrate over a widened box so boundary kernel mass is captured.
    let wide = BoundingBox::new(vec![-0.5, -0.5], vec![1.5, 1.5]);
    let got = kde.integrate_box(&wide);
    assert!((got - 10_000.0).abs() < 10.0, "kde total mass {got}");

    let grid = GridEstimator::fit(&data, BoundingBox::unit(2), 16).unwrap();
    let got = grid.integrate_box(&BoundingBox::unit(2));
    assert!((got - 10_000.0).abs() < 1e-6, "grid total mass {got}");
}

#[test]
fn uniform_data_has_flat_density() {
    let data = uniform_cube(50_000, 2, 6);
    for (name, est) in backends(&data, 2) {
        // Sample interior points; density should hover near n within a
        // modest band (away from boundary bias).
        let mut min_d = f64::INFINITY;
        let mut max_d: f64 = 0.0;
        for i in 0..20 {
            for j in 0..20 {
                let x = [0.2 + 0.6 * i as f64 / 19.0, 0.2 + 0.6 * j as f64 / 19.0];
                let d = est.density(&x);
                min_d = min_d.min(d);
                max_d = max_d.max(d);
            }
        }
        // A 500-kernel mixture has ~16 kernels overlapping any point, so
        // ~25% relative noise is expected; the band is a smoke check, not
        // a precision bound.
        assert!(
            min_d > 0.3 * 50_000.0 && max_d < 3.0 * 50_000.0,
            "{name}: density band [{min_d}, {max_d}] too far from n"
        );
    }
}

#[test]
fn clustered_data_has_contrast() {
    let synth = clustered(20_000, 2, 8);
    for (name, est) in backends(&synth.data, 2) {
        let inside = synth.regions[0].center();
        let in_density = est.density(&inside);
        // A point far from every region.
        let mut out = vec![0.0, 0.0];
        'search: for i in 0..40 {
            for j in 0..40 {
                let cand = vec![i as f64 / 39.0, j as f64 / 39.0];
                if synth
                    .regions
                    .iter()
                    .all(|r| r.inflate(0.08).dist_sq_to_point(&cand) > 0.0)
                {
                    out = cand;
                    break 'search;
                }
            }
        }
        let out_density = est.density(&out);
        assert!(
            in_density > 10.0 * (out_density + 1.0),
            "{name}: inside {in_density} vs outside {out_density}"
        );
    }
}
