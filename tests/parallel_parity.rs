//! Determinism contract of the parallel execution layer: every algorithm
//! that takes a `parallelism` knob must produce **byte-identical** output
//! for every thread count, with `1` reproducing the serial path.
//!
//! All float comparisons go through `to_bits`, so `-0.0` vs `0.0` or NaN
//! payload differences would fail — "identical" here means identical down
//! to the bit pattern.

use std::num::NonZeroUsize;

use dbs_core::{BoundingBox, Dataset, WeightedSample};
use dbs_density::{DensityEstimator, KdeConfig, KernelDensityEstimator};
use dbs_outlier::{approx_outliers, ApproxConfig, DbOutlierParams};
use dbs_sampling::{density_biased_sample, one_pass_biased_sample, BiasedConfig};

use dbs_integration_tests::clustered_noisy;

const THREADS: [usize; 3] = [1, 2, 7];

fn nz(t: usize) -> NonZeroUsize {
    NonZeroUsize::new(t).expect("thread counts under test are positive")
}

/// The fixed-seed 50k-point workload shared by every parity test.
fn workload() -> (Dataset, KernelDensityEstimator) {
    let synth = clustered_noisy(50_000, 2, 0.2, 42);
    let cfg = KdeConfig {
        domain: Some(BoundingBox::unit(2)),
        seed: 7,
        ..KdeConfig::with_centers(300)
    };
    let est = KernelDensityEstimator::fit_dataset(&synth.data, &cfg)
        .expect("KDE fit succeeds on the synthetic workload");
    (synth.data, est)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn assert_samples_identical(a: &WeightedSample, b: &WeightedSample, what: &str) {
    assert_eq!(
        a.source_indices(),
        b.source_indices(),
        "{what}: indices differ"
    );
    assert_eq!(
        bits(a.weights()),
        bits(b.weights()),
        "{what}: weights differ"
    );
    assert_eq!(
        bits(a.points().as_flat()),
        bits(b.points().as_flat()),
        "{what}: point coordinates differ"
    );
}

#[test]
fn kde_batch_densities_are_thread_count_independent() {
    let (data, est) = workload();
    let serial = est.densities(&data, nz(1)).unwrap();
    // The cache-blocked batch engine must agree with per-point scalar
    // evaluation on every point, bit for bit.
    for (i, &d) in serial.iter().enumerate() {
        assert_eq!(
            d.to_bits(),
            est.density(data.point(i)).to_bits(),
            "point {i}"
        );
    }
    for t in THREADS {
        let par = est.densities(&data, nz(t)).unwrap();
        assert_eq!(bits(&serial), bits(&par), "threads={t}");
    }
}

/// The sampler and outlier paths now evaluate densities through the batch
/// engine; their observable statistics must still equal what a per-point
/// scalar evaluation produces.
#[test]
fn batch_routed_pipelines_match_scalar_reference() {
    let (data, est) = workload();

    // Two-pass sampler: the normalizer k is the serial fold over f'(x);
    // recompute it from scalar density() calls and compare bits.
    let cfg = BiasedConfig::new(1500, 0.75).with_seed(5);
    let floor = cfg.density_floor * est.average_density();
    let reference_k: f64 = data
        .iter()
        .map(|x| est.density(x).max(floor).powf(cfg.exponent))
        .sum();
    let (_, stats) = density_biased_sample(&data, &est, &cfg).unwrap();
    assert_eq!(stats.normalizer_k.to_bits(), reference_k.to_bits());

    // One-pass sampler: the per-point inclusion decisions are a pure
    // function of the batch densities; replay them from scalar calls.
    let one_cfg = BiasedConfig::new(1500, 1.0).with_seed(23);
    let (one, one_stats) = one_pass_biased_sample(&data, &est, &one_cfg).unwrap();
    let k = one_stats.normalizer_k;
    let b = one_cfg.target_size as f64;
    let mut replayed = Vec::new();
    for (i, x) in data.iter().enumerate() {
        let p = (b * est.density(x).max(floor).powf(one_cfg.exponent) / k).min(1.0);
        if dbs_core::rng::keyed_unit(one_cfg.seed, i as u64) < p {
            replayed.push(i);
        }
    }
    assert_eq!(one.source_indices(), replayed.as_slice());

    // Outlier pruner: the density prefilter screens with batch densities;
    // the report must match a run whose estimator has no batch shortcut
    // (per-point fallback via the default trait hook).
    struct ScalarOnly<'a>(&'a KernelDensityEstimator);
    impl DensityEstimator for ScalarOnly<'_> {
        fn dim(&self) -> usize {
            self.0.dim()
        }
        fn dataset_size(&self) -> f64 {
            self.0.dataset_size()
        }
        fn density(&self, x: &[f64]) -> f64 {
            self.0.density(x)
        }
        fn integrate_box(&self, bbox: &dbs_core::BoundingBox) -> f64 {
            self.0.integrate_box(bbox)
        }
        fn average_density(&self) -> f64 {
            self.0.average_density()
        }
        // densities_into deliberately left at the per-point default.
    }
    let params = DbOutlierParams::new(0.02, 3).unwrap();
    let ocfg = ApproxConfig {
        slack: 5.0,
        seed: 3,
        ..ApproxConfig::new(params)
    };
    let batched = approx_outliers(&data, &est, &ocfg).unwrap();
    let scalar = approx_outliers(&data, &ScalarOnly(&est), &ocfg).unwrap();
    assert_eq!(batched.outliers, scalar.outliers);
    assert_eq!(batched.candidates, scalar.candidates);
}

#[test]
fn two_pass_sampler_is_thread_count_independent() {
    let (data, est) = workload();
    let base = BiasedConfig::new(2000, 1.0).with_seed(99);
    let (serial, serial_stats) =
        density_biased_sample(&data, &est, &base.clone().with_parallelism(nz(1))).unwrap();
    for t in THREADS {
        let cfg = base.clone().with_parallelism(nz(t));
        let (par, stats) = density_biased_sample(&data, &est, &cfg).unwrap();
        assert_samples_identical(&serial, &par, &format!("two-pass, threads={t}"));
        assert_eq!(
            serial_stats.normalizer_k.to_bits(),
            stats.normalizer_k.to_bits()
        );
        assert_eq!(serial_stats.clipped, stats.clipped);
        assert_eq!(stats.passes, 2);
    }
}

#[test]
fn one_pass_sampler_is_thread_count_independent() {
    let (data, est) = workload();
    let base = BiasedConfig::new(2000, -0.5).with_seed(17);
    let (serial, serial_stats) =
        one_pass_biased_sample(&data, &est, &base.clone().with_parallelism(nz(1))).unwrap();
    for t in THREADS {
        let cfg = base.clone().with_parallelism(nz(t));
        let (par, stats) = one_pass_biased_sample(&data, &est, &cfg).unwrap();
        assert_samples_identical(&serial, &par, &format!("one-pass, threads={t}"));
        assert_eq!(
            serial_stats.normalizer_k.to_bits(),
            stats.normalizer_k.to_bits()
        );
        assert_eq!(serial_stats.clipped, stats.clipped);
        assert_eq!(stats.passes, 1);
    }
}

#[test]
fn approx_outlier_detector_is_thread_count_independent() {
    let (data, est) = workload();
    let params = DbOutlierParams::new(0.02, 3).unwrap();
    let base = ApproxConfig {
        slack: 5.0,
        seed: 3,
        ..ApproxConfig::new(params)
    };
    let serial = approx_outliers(
        &data,
        &est,
        &ApproxConfig {
            parallelism: nz(1),
            ..base.clone()
        },
    )
    .unwrap();
    for t in THREADS {
        let cfg = ApproxConfig {
            parallelism: nz(t),
            ..base.clone()
        };
        let par = approx_outliers(&data, &est, &cfg).unwrap();
        assert_eq!(
            serial.outliers, par.outliers,
            "threads={t}: outlier sets differ"
        );
        assert_eq!(
            serial.candidates, par.candidates,
            "threads={t}: candidate counts differ"
        );
        assert_eq!(serial.passes, par.passes, "threads={t}: pass counts differ");
    }
}
