//! End-to-end CLI runs against generated dataset files: the exact flows a
//! user of the `dbs` tool exercises, through the library entry points.

use dbs_cli::args::parse;
use dbs_cli::commands::run;
use dbs_core::io::{write_binary, write_text};
use dbs_integration_tests::clustered_noisy;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dbs_cli_it_{}_{}", std::process::id(), name));
    p
}

fn run_cli(argv: &[&str]) -> Result<String, String> {
    let args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let parsed = parse(&args)?;
    let mut out = Vec::new();
    run(&parsed, &mut out)?;
    Ok(String::from_utf8(out).expect("utf8 output"))
}

#[test]
fn cluster_flow_over_text_file_finds_structure() {
    let synth = clustered_noisy(15_000, 2, 0.3, 1);
    let path = tmp("flow.txt");
    write_text(&path, &synth.data).unwrap();
    let out = run_cli(&[
        "cluster",
        path.to_str().unwrap(),
        "--clusters",
        "10",
        "--size",
        "600",
        "--kernels",
        "500",
        "--seed",
        "2",
    ])
    .unwrap();
    assert!(out.contains("into 10 clusters"), "{out}");
    // Horvitz–Thompson size estimates are reported.
    assert!(out.contains("dataset points"), "{out}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn binary_and_text_inputs_agree() {
    let synth = clustered_noisy(5_000, 3, 0.1, 3);
    let text_path = tmp("agree.txt");
    let bin_path = tmp("agree.dbs1");
    write_text(&text_path, &synth.data).unwrap();
    write_binary(&bin_path, &synth.data).unwrap();
    let a = run_cli(&["info", text_path.to_str().unwrap()]).unwrap();
    let b = run_cli(&["info", bin_path.to_str().unwrap()]).unwrap();
    // Same point count and dimensionality from either format. (Bounding
    // boxes may differ in the last float digit through text round-trip.)
    assert_eq!(a.lines().next(), b.lines().next());
    assert_eq!(a.lines().nth(1), b.lines().nth(1));
    std::fs::remove_file(&text_path).ok();
    std::fs::remove_file(&bin_path).ok();
}

#[test]
fn sample_flow_writes_weights_that_sum_to_n() {
    let synth = clustered_noisy(8_000, 2, 0.2, 5);
    let path = tmp("weights.txt");
    let out_path = tmp("weights_out.txt");
    let w_path = tmp("weights_w.txt");
    write_text(&path, &synth.data).unwrap();
    run_cli(&[
        "sample",
        path.to_str().unwrap(),
        "--size",
        "400",
        "--exponent",
        "1.0",
        "--output",
        out_path.to_str().unwrap(),
        "--weights",
        w_path.to_str().unwrap(),
    ])
    .unwrap();
    let weights: Vec<f64> = std::fs::read_to_string(&w_path)
        .unwrap()
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    assert!(!weights.is_empty());
    // Horvitz–Thompson: the weights estimate the dataset size (clustered
    // points plus injected noise).
    let n = synth.len() as f64;
    let total: f64 = weights.iter().sum();
    assert!(
        (total - n).abs() < 0.3 * n,
        "weight sum {total} should estimate n = {n}"
    );
    for p in [path, out_path, w_path] {
        std::fs::remove_file(&p).ok();
    }
}

#[test]
fn sample_output_is_thread_count_invariant_for_every_estimator() {
    // The determinism pledge behind `--threads`: for every density backend
    // the sampled output files are byte-identical at 1, 2, and 7 threads.
    let synth = clustered_noisy(6_000, 2, 0.2, 9);
    let path = tmp("par.txt");
    write_text(&path, &synth.data).unwrap();
    for spec in [
        "kde:300",
        "grid:16",
        "hashgrid:16",
        "wavelet:4:64",
        "agrid:4",
        "sketch:3:4096",
    ] {
        let mut baseline: Option<(String, String)> = None;
        for threads in ["1", "2", "7"] {
            let out_path = tmp(&format!("par_out_{}", threads));
            let w_path = tmp(&format!("par_w_{}", threads));
            run_cli(&[
                "sample",
                path.to_str().unwrap(),
                "--size",
                "300",
                "--estimator",
                spec,
                "--seed",
                "13",
                "--threads",
                threads,
                "--output",
                out_path.to_str().unwrap(),
                "--weights",
                w_path.to_str().unwrap(),
            ])
            .unwrap();
            let got = (
                std::fs::read_to_string(&out_path).unwrap(),
                std::fs::read_to_string(&w_path).unwrap(),
            );
            assert!(
                !got.0.is_empty(),
                "{spec}: empty sample at {threads} threads"
            );
            match &baseline {
                None => baseline = Some(got),
                Some(base) => assert_eq!(
                    base, &got,
                    "{spec}: output differs between 1 and {threads} threads"
                ),
            }
            std::fs::remove_file(&out_path).ok();
            std::fs::remove_file(&w_path).ok();
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn density_backends_route_through_the_estimator_factory() {
    // Factory-discipline gate: no CLI or experiments code may fit the KDE
    // directly — every density fit goes through `EstimatorSpec::fit`, so
    // `--estimator` reaches every code path. Scans the sources for direct
    // `fit_dataset` calls.
    // The integration-tests crate lives in <repo>/tests.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .to_path_buf();
    for dir in ["crates/cli/src", "crates/experiments/src"] {
        let mut stack = vec![root.join(dir)];
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d).unwrap() {
                let p = entry.unwrap().path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|e| e == "rs") {
                    let src = std::fs::read_to_string(&p).unwrap();
                    assert!(
                        !src.contains("fit_dataset"),
                        "{}: direct KDE fit bypasses the EstimatorSpec factory",
                        p.display()
                    );
                }
            }
        }
    }
}

#[test]
fn sample_exponent_changes_the_sample() {
    let synth = clustered_noisy(8_000, 2, 0.5, 7);
    let path = tmp("exp.txt");
    write_text(&path, &synth.data).unwrap();
    let dense = run_cli(&[
        "sample",
        path.to_str().unwrap(),
        "--size",
        "200",
        "--exponent",
        "1.0",
    ])
    .unwrap();
    let uniform = run_cli(&[
        "sample",
        path.to_str().unwrap(),
        "--size",
        "200",
        "--exponent",
        "0.0",
    ])
    .unwrap();
    // The normalizer k differs radically between exponents (n vs Σf).
    assert_ne!(dense, uniform);
    assert!(uniform.contains("a = 0"), "{uniform}");
    std::fs::remove_file(&path).ok();
}
