//! On-disk streaming must behave identically to in-memory processing:
//! the same seeds over the same points yield byte-identical summaries,
//! samples and detections.

use dbs_core::io::{write_binary, FileSource};
use dbs_core::scan::PassCounter;
use dbs_core::{BoundingBox, PointSource};
use dbs_density::{DensityEstimator, KdeConfig, KernelDensityEstimator};
use dbs_integration_tests::clustered;
use dbs_sampling::{density_biased_sample, reservoir_sample, BiasedConfig};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dbs_it_{}_{}", std::process::id(), name));
    p
}

#[test]
fn kde_from_file_equals_kde_from_memory() {
    let synth = clustered(10_000, 2, 1);
    let path = tmp("kde.dbs1");
    write_binary(&path, &synth.data).unwrap();
    let file = FileSource::open(&path).unwrap();

    let cfg = KdeConfig {
        num_centers: 300,
        domain: Some(BoundingBox::unit(2)),
        seed: 2,
        ..Default::default()
    };
    let mem = KernelDensityEstimator::fit_dataset(&synth.data, &cfg).unwrap();
    let disk = KernelDensityEstimator::fit(&file, &cfg).unwrap();
    assert_eq!(mem.centers(), disk.centers());
    assert_eq!(mem.bandwidths(), disk.bandwidths());
    for p in synth.data.iter().take(100) {
        assert_eq!(mem.density(p), disk.density(p));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn biased_sample_from_file_equals_memory() {
    let synth = clustered(10_000, 3, 3);
    let path = tmp("sample.dbs1");
    write_binary(&path, &synth.data).unwrap();
    let file = FileSource::open(&path).unwrap();

    let kde_cfg = KdeConfig {
        num_centers: 300,
        domain: Some(BoundingBox::unit(3)),
        seed: 4,
        ..Default::default()
    };
    let est = KernelDensityEstimator::fit_dataset(&synth.data, &kde_cfg).unwrap();
    let cfg = BiasedConfig::new(400, 1.0).with_seed(5);
    let (mem, mem_stats) = density_biased_sample(&synth.data, &est, &cfg).unwrap();
    let (disk, disk_stats) = density_biased_sample(&file, &est, &cfg).unwrap();
    assert_eq!(mem.source_indices(), disk.source_indices());
    assert_eq!(mem.points(), disk.points());
    assert_eq!(mem_stats.normalizer_k, disk_stats.normalizer_k);
    std::fs::remove_file(&path).ok();
}

#[test]
fn reservoir_from_file_equals_memory() {
    let synth = clustered(5_000, 2, 6);
    let path = tmp("reservoir.dbs1");
    write_binary(&path, &synth.data).unwrap();
    let file = FileSource::open(&path).unwrap();
    let mem = reservoir_sample(&synth.data, 200, 7).unwrap();
    let disk = reservoir_sample(&file, 200, 7).unwrap();
    assert_eq!(mem.source_indices(), disk.source_indices());
    std::fs::remove_file(&path).ok();
}

#[test]
fn file_pass_counting_matches_algorithm_claims() {
    let synth = clustered(5_000, 2, 8);
    let path = tmp("passes.dbs1");
    write_binary(&path, &synth.data).unwrap();
    let file = FileSource::open(&path).unwrap();
    let counted = PassCounter::new(&file);
    assert_eq!(PointSource::len(&counted), 5_000);

    let kde_cfg = KdeConfig {
        num_centers: 200,
        seed: 9,
        ..Default::default()
    };
    let est = KernelDensityEstimator::fit(&counted, &kde_cfg).unwrap();
    assert_eq!(counted.passes(), 1, "estimator = one pass");
    let _ = density_biased_sample(&counted, &est, &BiasedConfig::new(100, 0.5)).unwrap();
    assert_eq!(counted.passes(), 3, "sampler = two more passes");
    std::fs::remove_file(&path).ok();
}
