//! Shared fixtures for the cross-crate integration tests.

use dbs_core::Dataset;
use dbs_synth::noise::with_noise_fraction;
use dbs_synth::rect::{generate, RectConfig, SizeProfile};
use dbs_synth::SyntheticDataset;

/// The standard clustered workload used across the integration tests:
/// `n` points, 10 equal rectangular clusters in `[0,1]^dim`.
pub fn clustered(n: usize, dim: usize, seed: u64) -> SyntheticDataset {
    let cfg = RectConfig {
        total_points: n,
        ..RectConfig::paper_standard(dim, seed)
    };
    generate(&cfg, &SizeProfile::Equal).expect("generation succeeds at test sizes")
}

/// Same, plus uniform background noise at the given fraction.
pub fn clustered_noisy(n: usize, dim: usize, noise: f64, seed: u64) -> SyntheticDataset {
    with_noise_fraction(clustered(n, dim, seed), noise, seed ^ 0x5eed)
}

/// Fraction of `sample` indices whose ground-truth label is noise.
pub fn noise_share(synth: &SyntheticDataset, indices: &[usize]) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    let noise = indices
        .iter()
        .filter(|&&i| synth.labels[i] == dbs_synth::NOISE_LABEL)
        .count();
    noise as f64 / indices.len() as f64
}

/// Uniform points in the unit cube (no structure), for null-hypothesis
/// checks.
pub fn uniform_cube(n: usize, dim: usize, seed: u64) -> Dataset {
    use rand::Rng;
    let mut rng = dbs_core::rng::seeded(seed);
    let mut ds = Dataset::with_capacity(dim, n);
    let mut p = vec![0.0; dim];
    for _ in 0..n {
        for x in p.iter_mut() {
            *x = rng.gen();
        }
        ds.push(&p).expect("dim fixed");
    }
    ds
}
