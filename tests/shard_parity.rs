//! The storage-engine determinism contract: every pipeline stage —
//! density batches, biased sampling, outlier detection, sample-fed
//! clustering — produces byte-identical results whether the dataset lives
//! in memory, in a single `DBS1` binary file, or in a multi-shard columnar
//! directory, at every thread count. Plus the shard format's error paths:
//! corrupt headers, truncated files, and cross-shard dim mismatches must
//! fail loudly at open time, never silently misread.

use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use dbs_cluster::{sample_fed_cluster, HierarchicalConfig};
use dbs_core::io::{write_binary, FileSource};
use dbs_core::obs::{Counter, Recorder};
use dbs_core::par::CHUNK_POINTS;
use dbs_core::shard::{write_shards_with, ShardBackend, ShardedSource};
use dbs_core::{BoundingBox, Dataset, PointSource};
use dbs_density::{batch_densities, DensityEstimator, EstimatorSpec};
use dbs_integration_tests::{clustered, clustered_noisy, uniform_cube};
use dbs_outlier::{approx_outliers, ApproxConfig, DbOutlierParams};
use dbs_sampling::{density_biased_sample, BiasedConfig};
use proptest::prelude::*;

/// One cluster's comparable state: (members, mean bits, representative bits).
type ClusterBits = (Vec<usize>, Vec<u64>, Vec<Vec<u64>>);

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "dbs_shard_parity_{}_{}_{}",
        std::process::id(),
        name,
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&p).ok();
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn tmp_file(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "dbs_shard_parity_{}_{}_{}.dbs1",
        std::process::id(),
        name,
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

/// The three storage backings of one dataset; shards are one chunk each so
/// a ~10k-point fixture spans several shard files and chunk boundaries.
struct Backings {
    mem: Dataset,
    bin: PathBuf,
    dir: PathBuf,
}

impl Backings {
    fn new(data: Dataset, name: &str) -> Self {
        let bin = tmp_file(name);
        write_binary(&bin, &data).unwrap();
        let dir = tmp_dir(name);
        write_shards_with(&dir, &data, 7, CHUNK_POINTS).unwrap();
        Backings {
            mem: data,
            bin,
            dir,
        }
    }

    /// Runs `f` once per backing (mmap and read-fallback shards counted
    /// separately) and asserts all four results are equal.
    fn assert_invariant<T, F>(&self, what: &str, f: F) -> T
    where
        T: PartialEq + std::fmt::Debug,
        F: Fn(&(dyn PointSource + Sync)) -> T,
    {
        let from_mem = f(&self.mem);
        let file = FileSource::open(&self.bin).unwrap();
        assert_eq!(f(&file), from_mem, "{what}: file backing diverged");
        let mapped = ShardedSource::open(&self.dir).unwrap();
        assert_eq!(f(&mapped), from_mem, "{what}: mmap shards diverged");
        let read = ShardedSource::open_with(&self.dir, ShardBackend::Read).unwrap();
        assert_eq!(f(&read), from_mem, "{what}: read-fallback shards diverged");
        from_mem
    }
}

impl Drop for Backings {
    fn drop(&mut self) {
        std::fs::remove_file(&self.bin).ok();
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn fit(spec: &str, source: &(dyn PointSource + Sync)) -> Box<dyn DensityEstimator + Sync> {
    EstimatorSpec::parse(spec)
        .unwrap()
        .with_seed(11)
        .with_domain(BoundingBox::unit(source.dim()))
        .fit(source)
        .unwrap()
}

fn threads(t: usize) -> NonZeroUsize {
    NonZeroUsize::new(t).unwrap()
}

#[test]
fn density_batches_are_backing_invariant() {
    let synth = clustered(10_000, 2, 21);
    let backings = Backings::new(synth.data, "density");
    for spec in ["kde:100", "agrid:2:8"] {
        for t in [1usize, 2, 7] {
            backings.assert_invariant(&format!("{spec} t={t}"), |source| {
                let est = fit(spec, source);
                batch_densities(&*est, source, threads(t))
                    .unwrap()
                    .iter()
                    .map(|d| d.to_bits())
                    .collect::<Vec<u64>>()
            });
        }
    }
}

#[test]
fn biased_sampling_is_backing_invariant() {
    let synth = clustered(10_000, 2, 22);
    let backings = Backings::new(synth.data, "sample");
    for t in [1usize, 2, 7] {
        backings.assert_invariant(&format!("sample t={t}"), |source| {
            let est = fit("kde:100", source);
            let cfg = BiasedConfig::new(500, 1.0)
                .with_seed(23)
                .with_parallelism(threads(t));
            let (s, stats) = density_biased_sample(source, &*est, &cfg).unwrap();
            (
                s.source_indices().to_vec(),
                s.points()
                    .as_flat()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<u64>>(),
                s.weights()
                    .iter()
                    .map(|w| w.to_bits())
                    .collect::<Vec<u64>>(),
                stats.normalizer_k.to_bits(),
            )
        });
    }
}

#[test]
fn outlier_detection_is_backing_invariant() {
    let synth = clustered_noisy(8_000, 2, 0.05, 24);
    let backings = Backings::new(synth.data, "outliers");
    for t in [1usize, 2, 7] {
        let report = backings.assert_invariant(&format!("outliers t={t}"), |source| {
            let est = fit("kde:100", source);
            let mut cfg = ApproxConfig::new(DbOutlierParams::new(0.04, 3).unwrap());
            cfg.seed = 25;
            cfg.parallelism = threads(t);
            let r = approx_outliers(source, &*est, &cfg).unwrap();
            (r.outliers, r.candidates)
        });
        // The fixture has structure; a report that finds nothing at all
        // would make the parity assertion vacuous.
        assert!(report.1 > 0, "no outlier candidates at t={t}");
    }
}

#[test]
fn sample_fed_clustering_is_backing_invariant() {
    let synth = clustered(10_000, 2, 26);
    let backings = Backings::new(synth.data, "cluster");
    for t in [1usize, 2, 7] {
        backings.assert_invariant(&format!("cluster t={t}"), |source| {
            let est = fit("agrid:2:8", source);
            let cfg = BiasedConfig::new(600, 1.0)
                .with_seed(27)
                .with_parallelism(threads(t));
            let (s, _) = density_biased_sample(source, &*est, &cfg).unwrap();
            let hc = HierarchicalConfig::paper_defaults(10).with_parallelism(threads(t));
            let clustering = sample_fed_cluster(source, s.points(), &hc).unwrap();
            let clusters: Vec<ClusterBits> = clustering
                .clusters
                .iter()
                .map(|c| {
                    (
                        c.members.clone(),
                        c.mean.iter().map(|x| x.to_bits()).collect(),
                        c.representatives
                            .iter()
                            .map(|r| r.iter().map(|x| x.to_bits()).collect())
                            .collect(),
                    )
                })
                .collect();
            (clustering.assignments, clusters)
        });
    }
}

#[test]
fn shard_io_counters_are_thread_count_invariant() {
    let synth = clustered(10_000, 2, 28);
    let backings = Backings::new(synth.data, "counters");
    let sharded = ShardedSource::open(&backings.dir).unwrap();
    let mut baseline = None;
    for t in [1usize, 2, 7] {
        let rec = Recorder::enabled();
        let est = fit("agrid:2:8", &sharded);
        let densities =
            dbs_density::batch_densities_obs(&*est, &sharded, threads(t), &rec).unwrap();
        assert_eq!(densities.len(), 10_000);
        let reads = rec.counter(Counter::ShardChunkReads);
        let bytes = rec.counter(Counter::ShardBytesMapped);
        assert!(reads >= 3, "expected one read per chunk, got {reads}");
        assert_eq!(bytes, 10_000 * 2 * 8, "t={t}");
        match &baseline {
            None => baseline = Some((reads, bytes)),
            Some(b) => assert_eq!((reads, bytes), *b, "t={t}"),
        }
    }
}

#[test]
fn corrupt_shards_fail_at_open() {
    // Exactly one full chunk, so a grafted second shard passes the interior
    // alignment check and reaches the dim comparison.
    let data = uniform_cube(4_096, 2, 29);
    // Bad magic.
    let dir = tmp_dir("badmagic");
    write_shards_with(&dir, &data, 0, CHUNK_POINTS).unwrap();
    let shard0 = dir.join("shard-00000.dbss");
    let mut bytes = std::fs::read(&shard0).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(&shard0, &bytes).unwrap();
    let err = ShardedSource::open(&dir).unwrap_err().to_string();
    assert!(err.contains("magic"), "{err}");
    std::fs::remove_dir_all(&dir).ok();

    // Truncated data region.
    let dir = tmp_dir("truncated");
    write_shards_with(&dir, &data, 0, CHUNK_POINTS).unwrap();
    let shard0 = dir.join("shard-00000.dbss");
    let len = std::fs::metadata(&shard0).unwrap().len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&shard0)
        .unwrap();
    f.set_len(len - 16).unwrap();
    drop(f);
    let err = ShardedSource::open(&dir).unwrap_err().to_string();
    assert!(err.contains("truncated"), "{err}");
    std::fs::remove_dir_all(&dir).ok();

    // Cross-shard dimension mismatch: graft a 3d shard (header index
    // patched to slot 1) behind a 2d shard.
    let dir = tmp_dir("dimmix");
    write_shards_with(&dir, &data, 0, CHUNK_POINTS).unwrap();
    let alien_dir = tmp_dir("dimmix_alien");
    let alien = Dataset::from_rows(&[vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]]).unwrap();
    write_shards_with(&alien_dir, &alien, 0, CHUNK_POINTS).unwrap();
    let mut alien_bytes = std::fs::read(alien_dir.join("shard-00000.dbss")).unwrap();
    alien_bytes[32..36].copy_from_slice(&1u32.to_le_bytes());
    std::fs::write(dir.join("shard-00001.dbss"), &alien_bytes).unwrap();
    let err = ShardedSource::open(&dir).unwrap_err().to_string();
    assert!(err.contains("dim"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&alien_dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary unit-cube datasets, seeds, and thread counts, the
    /// biased-sampling pipeline over one-chunk shards is byte-identical to
    /// the in-memory run — indices, scaled points, weights and normalizer.
    #[test]
    fn sharded_sampling_matches_memory(
        rows in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 2..=2),
            64..6000,
        ),
        t in 1usize..8,
        seed in 0u64..512,
    ) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let dir = tmp_dir("prop");
        write_shards_with(&dir, &ds, seed, CHUNK_POINTS).unwrap();
        let sharded = ShardedSource::open(&dir).unwrap();
        prop_assert_eq!(PointSource::len(&sharded), rows.len());

        let run = |source: &(dyn PointSource + Sync)| {
            let est = EstimatorSpec::parse("grid:8")
                .unwrap()
                .with_seed(seed)
                .with_domain(BoundingBox::unit(2))
                .fit(source)
                .unwrap();
            let cfg = BiasedConfig::new(rows.len() / 3 + 1, 1.0)
                .with_seed(seed)
                .with_parallelism(threads(t));
            let (s, stats) = density_biased_sample(source, &*est, &cfg).unwrap();
            (
                s.source_indices().to_vec(),
                s.points().as_flat().iter().map(|x| x.to_bits()).collect::<Vec<u64>>(),
                s.weights().iter().map(|w| w.to_bits()).collect::<Vec<u64>>(),
                stats.normalizer_k.to_bits(),
            )
        };
        prop_assert_eq!(run(&ds), run(&sharded));
        std::fs::remove_dir_all(&dir).ok();
    }
}
