//! End-to-end checks of the sample → cluster → evaluate chain.

use dbs_cluster::{
    clusters_found, clusters_found_by_centers, hierarchical_cluster, kmeans, Birch, BirchConfig,
    EvalConfig, HierarchicalConfig, KMeansConfig,
};
use dbs_core::BoundingBox;
use dbs_density::{KdeConfig, KernelDensityEstimator};
use dbs_integration_tests::{clustered, clustered_noisy};
use dbs_sampling::{density_biased_sample, BiasedConfig};

#[test]
fn full_biased_pipeline_finds_all_clusters_on_clean_data() {
    let synth = clustered(30_000, 2, 1);
    let kde_cfg = KdeConfig {
        num_centers: 500,
        domain: Some(BoundingBox::unit(2)),
        seed: 2,
        ..Default::default()
    };
    let est = KernelDensityEstimator::fit_dataset(&synth.data, &kde_cfg).unwrap();
    let (sample, _) =
        density_biased_sample(&synth.data, &est, &BiasedConfig::new(800, 1.0).with_seed(3))
            .unwrap();
    let clustering =
        hierarchical_cluster(sample.points(), &HierarchicalConfig::paper_defaults(10)).unwrap();
    let found = clusters_found(&clustering.clusters, &synth.regions, &EvalConfig::default());
    assert_eq!(found, 10, "all clusters must be found on clean data");
}

#[test]
fn pipeline_handles_3d_and_5d() {
    for dim in [3usize, 5] {
        let synth = clustered(20_000, dim, 4 + dim as u64);
        let kde_cfg = KdeConfig {
            num_centers: 500,
            domain: Some(BoundingBox::unit(dim)),
            seed: 5,
            ..Default::default()
        };
        let est = KernelDensityEstimator::fit_dataset(&synth.data, &kde_cfg).unwrap();
        // A single 800-point draw recovers 7–10 of the 10 clusters in 5-d
        // depending on the draw; the checked seed is one of the typical
        // (>=8) draws, probed over seeds {1, 2, 3, 9, 12, 17} after the
        // sampler's per-point RNG streams changed.
        let (sample, _) =
            density_biased_sample(&synth.data, &est, &BiasedConfig::new(800, 1.0).with_seed(2))
                .unwrap();
        let clustering =
            hierarchical_cluster(sample.points(), &HierarchicalConfig::paper_defaults(10)).unwrap();
        let found = clusters_found(&clustering.clusters, &synth.regions, &EvalConfig::default());
        assert!(found >= 8, "{dim}-d pipeline found only {found}");
    }
}

#[test]
fn birch_memory_budget_equals_sample_size_comparison() {
    // The paper's comparison convention: BIRCH sees the whole dataset but
    // its CF-tree is capped at the sample size.
    let synth = clustered(30_000, 2, 7);
    let budget = 600;
    let cfg = BirchConfig::paper_defaults(10, budget, 2);
    let res = Birch::run_dataset(&synth.data, &cfg).unwrap();
    assert!(res.leaf_entries <= budget);
    let centers: Vec<Vec<f64>> = res.clusters.iter().map(|c| c.center.clone()).collect();
    let found = clusters_found_by_centers(&centers, &synth.regions, &EvalConfig::default());
    assert!(found >= 8, "BIRCH found only {found} on clean data");
}

#[test]
fn weighted_kmeans_debiases_a_biased_sample() {
    // Two clusters, one 9x the other. A heavily biased sample plus 1/p
    // weights must put the 2-means centers where unweighted k-means on the
    // raw sample would misplace them. We check the weighted centers land
    // near both true cluster centers.
    use dbs_synth::rect::{generate, RectConfig, SizeProfile};
    let cfg = RectConfig {
        total_points: 20_000,
        num_clusters: 2,
        volume_range: (0.01, 0.02),
        ..RectConfig::paper_standard(2, 8)
    };
    let synth = generate(&cfg, &SizeProfile::Explicit(vec![18_000, 2_000])).unwrap();
    let kde_cfg = KdeConfig {
        num_centers: 500,
        domain: Some(BoundingBox::unit(2)),
        seed: 9,
        ..Default::default()
    };
    let est = KernelDensityEstimator::fit_dataset(&synth.data, &kde_cfg).unwrap();
    // a = -1 equalizes region representation: the sample holds comparable
    // counts from both clusters even though the data is 9:1.
    let (sample, _) = density_biased_sample(
        &synth.data,
        &est,
        &BiasedConfig::new(1000, -1.0).with_seed(10),
    )
    .unwrap();
    let result = kmeans(
        sample.points(),
        sample.weights(),
        &KMeansConfig::new(2).with_seed(11),
    )
    .unwrap();
    for region in &synth.regions {
        let c = region.center();
        let nearest = result
            .centers
            .iter()
            .map(|x| dbs_core::metric::euclidean(x, &c))
            .fold(f64::INFINITY, f64::min);
        assert!(nearest < 0.08, "no center near {c:?} (best {nearest})");
    }
}

#[test]
fn noise_assignments_are_consistent_with_eval() {
    let synth = clustered_noisy(20_000, 2, 0.4, 12);
    let kde_cfg = KdeConfig {
        num_centers: 500,
        domain: Some(BoundingBox::unit(2)),
        seed: 13,
        ..Default::default()
    };
    let est = KernelDensityEstimator::fit_dataset(&synth.data, &kde_cfg).unwrap();
    let (sample, _) = density_biased_sample(
        &synth.data,
        &est,
        &BiasedConfig::new(600, 1.0).with_seed(14),
    )
    .unwrap();
    let clustering =
        hierarchical_cluster(sample.points(), &HierarchicalConfig::paper_defaults(10)).unwrap();
    // Assignment table is total: every sample point is either in a reported
    // cluster or marked noise, never both.
    let mut seen = vec![false; sample.len()];
    for (ci, c) in clustering.clusters.iter().enumerate() {
        for &m in &c.members {
            assert!(!seen[m], "point {m} in two clusters");
            seen[m] = true;
            assert_eq!(clustering.assignments[m], ci);
        }
    }
    for (i, &s) in seen.iter().enumerate() {
        if !s {
            assert_eq!(clustering.assignments[i], dbs_cluster::NOISE);
        }
    }
}
