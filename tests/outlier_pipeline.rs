//! End-to-end checks of the density-pruned outlier detector against the
//! exact baselines, across estimator backends and dimensions.

use dbs_core::BoundingBox;
use dbs_density::{GridEstimator, KdeConfig, KernelDensityEstimator};
use dbs_outlier::{
    approx_outliers, cell_based_outliers, estimate_outlier_count, kdtree_outliers,
    nested_loop_outliers, ApproxConfig, DbOutlierParams,
};
use dbs_synth::outliers::planted_outliers;
use dbs_synth::rect::RectConfig;

fn workload(dim: usize, seed: u64) -> (dbs_core::Dataset, Vec<usize>, f64) {
    let background = RectConfig {
        total_points: 8_000,
        ..RectConfig::paper_standard(dim, seed)
    };
    let radius: f64 = if dim == 2 { 0.03 } else { 0.06 };
    // Isolation comfortably beyond the kernel support (Scott bandwidth at
    // 500 centers is ~0.1): an outlier closer than the bandwidth to a dense
    // cluster legitimately looks populated to the density model — the
    // paper's "almost all cases" caveat. The planted ground truth avoids
    // that regime so recall assertions can be exact.
    let isolation = (2.0 * radius).max(0.12);
    let planted = planted_outliers(&background, 6, isolation, seed ^ 0xff).unwrap();
    (planted.synth.data, planted.outlier_indices, radius)
}

#[test]
fn all_exact_detectors_agree() {
    for dim in [2usize, 3] {
        let (data, _, radius) = workload(dim, 1);
        let params = DbOutlierParams::new(radius, 2).unwrap();
        let nested = nested_loop_outliers(&data, &params);
        let kd = kdtree_outliers(&data, &params);
        let cells = cell_based_outliers(&data, &params, &BoundingBox::unit(dim));
        assert_eq!(nested, kd, "{dim}-d: kd-tree disagrees");
        assert_eq!(nested, cells, "{dim}-d: cell-based disagrees");
    }
}

#[test]
fn approx_detector_recovers_exact_set_with_kde() {
    for dim in [2usize, 3] {
        let (data, planted, radius) = workload(dim, 2);
        let params = DbOutlierParams::new(radius, 2).unwrap();
        let kde_cfg = KdeConfig {
            num_centers: 500,
            domain: Some(BoundingBox::unit(dim)),
            seed: 3,
            ..Default::default()
        };
        let est = KernelDensityEstimator::fit_dataset(&data, &kde_cfg).unwrap();
        let report = approx_outliers(
            &data,
            &est,
            &ApproxConfig {
                slack: 10.0,
                ..ApproxConfig::new(params)
            },
        )
        .unwrap();
        let exact = nested_loop_outliers(&data, &params);
        assert_eq!(report.outliers, exact, "{dim}-d mismatch");
        for p in &planted {
            assert!(
                report.outliers.contains(p),
                "{dim}-d missed planted outlier {p}"
            );
        }
    }
}

#[test]
fn approx_detector_works_with_grid_backend() {
    let (data, planted, radius) = workload(2, 4);
    let params = DbOutlierParams::new(radius, 2).unwrap();
    let grid = GridEstimator::fit(&data, BoundingBox::unit(2), 48).unwrap();
    let report = approx_outliers(
        &data,
        &grid,
        &ApproxConfig {
            slack: 10.0,
            ..ApproxConfig::new(params)
        },
    )
    .unwrap();
    for p in &planted {
        assert!(report.outliers.contains(p), "grid backend missed {p}");
    }
    // Verification guarantees no false positives regardless of backend.
    let exact = nested_loop_outliers(&data, &params);
    for o in &report.outliers {
        assert!(exact.contains(o), "false positive {o}");
    }
}

#[test]
fn one_pass_count_estimate_tracks_parameter_changes() {
    let (data, _, radius) = workload(2, 5);
    let kde_cfg = KdeConfig {
        num_centers: 500,
        domain: Some(BoundingBox::unit(2)),
        seed: 6,
        ..Default::default()
    };
    let est = KernelDensityEstimator::fit_dataset(&data, &kde_cfg).unwrap();
    // Larger radius -> fewer expected outliers; the one-pass estimate must
    // be monotone in that direction.
    let tight = DbOutlierParams::new(radius, 2).unwrap();
    let loose = DbOutlierParams::new(radius * 4.0, 2).unwrap();
    let threads = dbs_core::par::available_parallelism();
    let n_tight = estimate_outlier_count(&data, &est, &tight, 64, 7, threads).unwrap();
    let n_loose = estimate_outlier_count(&data, &est, &loose, 64, 7, threads).unwrap();
    assert!(n_tight >= n_loose, "tight {n_tight} < loose {n_loose}");
    assert!(n_tight >= 6, "estimate {n_tight} misses planted outliers");
}

#[test]
fn total_pipeline_pass_budget_is_three() {
    // §4.5: at most two dataset passes plus the estimator pass.
    let (data, _, radius) = workload(2, 8);
    let counted = dbs_core::scan::PassCounter::new(&data);
    let kde_cfg = KdeConfig {
        num_centers: 300,
        domain: Some(BoundingBox::unit(2)),
        seed: 9,
        ..Default::default()
    };
    let est = KernelDensityEstimator::fit(&counted, &kde_cfg).unwrap();
    let params = DbOutlierParams::new(radius, 2).unwrap();
    let _ = approx_outliers(&counted, &est, &ApproxConfig::new(params)).unwrap();
    assert_eq!(counted.passes(), 3, "1 estimator + 2 detector passes");
}
