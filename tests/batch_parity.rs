//! Batch/scalar parity contract of the cache-blocked KDE engine
//! (`dbs_density::batch`): for every kernel, dimensionality, thread count,
//! and pruning configuration, the batch path must reproduce per-point
//! `density()` **bit for bit**. Together with `tests/parallel_parity.rs`
//! (byte-identical at every thread count) this pins the full determinism
//! contract: scalar ≡ batch ≡ any parallelism level.

use std::num::NonZeroUsize;

use dbs_core::rng::seeded;
use dbs_core::{BoundingBox, Dataset};
use dbs_density::{DensityEstimator, KdeConfig, Kernel, KernelDensityEstimator};
use proptest::prelude::*;
use rand::Rng;

const KERNELS: [Kernel; 4] = [
    Kernel::Epanechnikov,
    Kernel::Gaussian,
    Kernel::Biweight,
    Kernel::Uniform,
];
const DIMS: [usize; 4] = [1, 2, 3, 5];
const THREADS: [usize; 3] = [1, 2, 7];
/// Below / above the 64-center grid threshold: exercises both the
/// full-panel path and the tile-pruned path (for compact kernels).
const CENTER_COUNTS: [usize; 2] = [32, 200];

fn nz(t: usize) -> NonZeroUsize {
    NonZeroUsize::new(t).expect("positive thread count")
}

/// Clustered points in the unit cube plus a few strays outside it, so the
/// clamped boundary cells of the center grid are exercised too.
fn workload(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    let mut ds = Dataset::with_capacity(dim, n + 8);
    let mut p = vec![0.0f64; dim];
    for i in 0..n {
        let (center, spread) = if i % 3 == 0 { (0.7, 0.3) } else { (0.3, 0.1) };
        for x in p.iter_mut() {
            *x = center + (rng.gen::<f64>() - 0.5) * spread;
        }
        ds.push(&p).expect("fixed dim");
    }
    for _ in 0..8 {
        for x in p.iter_mut() {
            *x = rng.gen::<f64>() * 3.0 - 1.0;
        }
        ds.push(&p).expect("fixed dim");
    }
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// density() ≡ batch path, bit for bit, across every kernel × dim ×
    /// center count × thread count.
    #[test]
    fn batch_densities_are_bit_identical_to_scalar(seed in 0u64..10_000) {
        for dim in DIMS {
            // 2-d gets a multi-chunk workload (> CHUNK_POINTS) so the
            // thread counts genuinely split the scan; other dims stay small
            // to keep the scalar reference affordable.
            let n = if dim == 2 { 5000 } else { 400 };
            let data = workload(n, dim, seed ^ dim as u64);
            for kernel in KERNELS {
                for centers in CENTER_COUNTS {
                    let cfg = KdeConfig {
                        kernel,
                        num_centers: centers,
                        domain: Some(BoundingBox::unit(dim)),
                        seed: seed.wrapping_add(1),
                        ..KdeConfig::default()
                    };
                    let est = KernelDensityEstimator::fit_dataset(&data, &cfg)
                        .expect("fit succeeds");
                    let scalar: Vec<u64> = data
                        .iter()
                        .map(|x| est.density(x).to_bits())
                        .collect();
                    for t in THREADS {
                        let batch = est.densities(&data, nz(t)).expect("batch eval");
                        let batch_bits: Vec<u64> =
                            batch.iter().map(|d| d.to_bits()).collect();
                        prop_assert_eq!(
                            &scalar,
                            &batch_bits,
                            "kernel {:?} dim {} centers {} (grid: {}) threads {}",
                            kernel,
                            dim,
                            centers,
                            est.has_center_grid(),
                            t
                        );
                    }
                }
            }
        }
    }
}
