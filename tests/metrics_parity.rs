//! Contract of the observability layer (`dbs_core::obs`): enabling metrics
//! never changes any computed output, and the counter values themselves are
//! deterministic — identical at every thread count, because per-chunk
//! tallies merge in chunk order by integer addition.
//!
//! Every instrumented entry point is run with metrics off and on, at
//! several thread counts, and the outputs compared bit for bit; the
//! recorded counters are compared across thread counts; and the dataset
//! pass counters are cross-checked against `dbs_core::scan::PassCounter`,
//! which observes the scans from outside the pipeline.

use std::num::NonZeroUsize;

use dbs_cluster::{hierarchical_cluster_obs, HierarchicalConfig};
use dbs_core::obs::{Counter, Recorder};
use dbs_core::scan::PassCounter;
use dbs_core::{BoundingBox, Dataset, WeightedSample};
use dbs_density::{batch_densities_obs, KdeConfig, KernelDensityEstimator};
use dbs_outlier::{approx_outliers_obs, estimate_outlier_count_obs, ApproxConfig, DbOutlierParams};
use dbs_sampling::{
    density_biased_sample_obs, one_pass_biased_sample_obs, reservoir_sample_obs,
    reservoir_sample_skip_obs, BiasedConfig,
};

use dbs_integration_tests::clustered_noisy;

const THREADS: [usize; 3] = [1, 2, 7];

fn nz(t: usize) -> NonZeroUsize {
    NonZeroUsize::new(t).expect("thread counts under test are positive")
}

/// The fixed-seed workload shared by every parity test.
fn workload() -> (Dataset, KernelDensityEstimator) {
    let synth = clustered_noisy(20_000, 2, 0.2, 42);
    let cfg = KdeConfig {
        domain: Some(BoundingBox::unit(2)),
        seed: 7,
        ..KdeConfig::with_centers(300)
    };
    let est = KernelDensityEstimator::fit_dataset(&synth.data, &cfg)
        .expect("KDE fit succeeds on the synthetic workload");
    (synth.data, est)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// All counter values of an enabled recorder, in catalog order.
fn counters(rec: &Recorder) -> Vec<u64> {
    rec.snapshot()
        .expect("recorder enabled")
        .counters
        .iter()
        .map(|&(_, v)| v)
        .collect()
}

fn assert_samples_identical(a: &WeightedSample, b: &WeightedSample, what: &str) {
    assert_eq!(a.source_indices(), b.source_indices(), "{what}: indices");
    assert_eq!(bits(a.weights()), bits(b.weights()), "{what}: weights");
    assert_eq!(
        bits(a.points().as_flat()),
        bits(b.points().as_flat()),
        "{what}: coordinates"
    );
}

#[test]
fn two_pass_sampler_metrics_parity() {
    let (data, est) = workload();
    let base = BiasedConfig::new(1500, 1.0).with_seed(99);
    let mut counter_sets = Vec::new();
    let (baseline, baseline_stats) =
        density_biased_sample_obs(&data, &est, &base, &Recorder::disabled()).unwrap();
    for t in THREADS {
        let cfg = base.clone().with_parallelism(nz(t));
        let (off, off_stats) =
            density_biased_sample_obs(&data, &est, &cfg, &Recorder::disabled()).unwrap();
        let rec = Recorder::enabled();
        let (on, on_stats) = density_biased_sample_obs(&data, &est, &cfg, &rec).unwrap();
        assert_samples_identical(&off, &on, &format!("two-pass on/off, threads={t}"));
        assert_samples_identical(
            &baseline,
            &on,
            &format!("two-pass vs baseline, threads={t}"),
        );
        assert_eq!(
            off_stats.normalizer_k.to_bits(),
            on_stats.normalizer_k.to_bits()
        );
        assert_eq!(off_stats.clipped, on_stats.clipped);
        assert_eq!(rec.counter(Counter::DatasetPasses), 2);
        assert_eq!(
            rec.counter(Counter::SamplerClipEvents),
            on_stats.clipped as u64
        );
        counter_sets.push(counters(&rec));
    }
    assert_eq!(counter_sets[0], counter_sets[1], "threads 1 vs 2");
    assert_eq!(counter_sets[0], counter_sets[2], "threads 1 vs 7");
    let _ = baseline_stats;
}

#[test]
fn one_pass_sampler_metrics_parity() {
    let (data, est) = workload();
    let base = BiasedConfig::new(1500, -0.5).with_seed(17);
    let mut counter_sets = Vec::new();
    for t in THREADS {
        let cfg = base.clone().with_parallelism(nz(t));
        let (off, off_stats) =
            one_pass_biased_sample_obs(&data, &est, &cfg, &Recorder::disabled()).unwrap();
        let rec = Recorder::enabled();
        let (on, on_stats) = one_pass_biased_sample_obs(&data, &est, &cfg, &rec).unwrap();
        assert_samples_identical(&off, &on, &format!("one-pass on/off, threads={t}"));
        assert_eq!(
            off_stats.normalizer_k.to_bits(),
            on_stats.normalizer_k.to_bits()
        );
        assert_eq!(off_stats.clipped, on_stats.clipped);
        // One primary-source pass: the kernel-center evaluation inside the
        // normalizer approximation scans derived data, not the dataset.
        assert_eq!(rec.counter(Counter::DatasetPasses), 1);
        counter_sets.push(counters(&rec));
    }
    assert_eq!(counter_sets[0], counter_sets[1], "threads 1 vs 2");
    assert_eq!(counter_sets[0], counter_sets[2], "threads 1 vs 7");
}

#[test]
fn reservoir_samplers_metrics_parity() {
    let (data, _) = workload();
    for (name, f) in [
        (
            "algorithm-r",
            reservoir_sample_obs as fn(&Dataset, usize, u64, &Recorder) -> _,
        ),
        ("algorithm-l", reservoir_sample_skip_obs),
    ] {
        let off = f(&data, 500, 11, &Recorder::disabled()).unwrap();
        let rec = Recorder::enabled();
        let on = f(&data, 500, 11, &rec).unwrap();
        assert_samples_identical(&off, &on, name);
        assert_eq!(rec.counter(Counter::DatasetPasses), 1, "{name}");
        assert!(
            rec.counter(Counter::ReservoirReplacements) > 0,
            "{name}: a 20k stream must replace some of 500 slots"
        );
    }
}

#[test]
fn outlier_detector_metrics_parity() {
    let (data, est) = workload();
    let params = DbOutlierParams::new(0.02, 3).unwrap();
    let base = ApproxConfig {
        slack: 5.0,
        seed: 3,
        ..ApproxConfig::new(params)
    };
    let mut counter_sets = Vec::new();
    for t in THREADS {
        let cfg = ApproxConfig {
            parallelism: nz(t),
            ..base.clone()
        };
        let off = approx_outliers_obs(&data, &est, &cfg, &Recorder::disabled()).unwrap();
        let rec = Recorder::enabled();
        let on = approx_outliers_obs(&data, &est, &cfg, &rec).unwrap();
        assert_eq!(off.outliers, on.outliers, "threads={t}");
        assert_eq!(off.candidates, on.candidates, "threads={t}");
        assert_eq!(rec.counter(Counter::DatasetPasses), 2);
        assert_eq!(
            rec.counter(Counter::OutlierCandidates),
            on.candidates as u64
        );
        // Pass 1 partitions into skips and ball integrals.
        let integrated = rec.counter(Counter::BallSamples) / cfg.ball_samples as u64;
        assert_eq!(
            rec.counter(Counter::PrefilterSkips) + integrated,
            data.len() as u64
        );
        counter_sets.push(counters(&rec));
    }
    assert_eq!(counter_sets[0], counter_sets[1], "threads 1 vs 2");
    assert_eq!(counter_sets[0], counter_sets[2], "threads 1 vs 7");
}

#[test]
fn outlier_count_estimate_metrics_parity() {
    let (data, est) = workload();
    let params = DbOutlierParams::new(0.02, 3).unwrap();
    let mut counter_sets = Vec::new();
    for t in THREADS {
        let off =
            estimate_outlier_count_obs(&data, &est, &params, 32, 5, nz(t), &Recorder::disabled())
                .unwrap();
        let rec = Recorder::enabled();
        let on = estimate_outlier_count_obs(&data, &est, &params, 32, 5, nz(t), &rec).unwrap();
        assert_eq!(off, on, "threads={t}");
        assert_eq!(rec.counter(Counter::DatasetPasses), 1);
        assert_eq!(
            rec.counter(Counter::BallSamples),
            32 * data.len() as u64,
            "every point gets exactly one 32-sample ball integral"
        );
        counter_sets.push(counters(&rec));
    }
    assert_eq!(counter_sets[0], counter_sets[1], "threads 1 vs 2");
    assert_eq!(counter_sets[0], counter_sets[2], "threads 1 vs 7");
}

#[test]
fn hierarchical_clustering_metrics_parity() {
    let (data, est) = workload();
    let cfg = BiasedConfig::new(800, 1.0).with_seed(31);
    let (sample, _) = density_biased_sample_obs(&data, &est, &cfg, &Recorder::disabled()).unwrap();
    let mut counter_sets = Vec::new();
    for t in THREADS {
        let hc = HierarchicalConfig::paper_defaults(10).with_parallelism(nz(t));
        let off = hierarchical_cluster_obs(sample.points(), &hc, &Recorder::disabled()).unwrap();
        let rec = Recorder::enabled();
        let on = hierarchical_cluster_obs(sample.points(), &hc, &rec).unwrap();
        assert_eq!(off.assignments, on.assignments, "threads={t}");
        assert_eq!(off.clusters.len(), on.clusters.len(), "threads={t}");
        for (a, b) in off.clusters.iter().zip(&on.clusters) {
            assert_eq!(bits(&a.mean), bits(&b.mean), "threads={t}");
            assert_eq!(a.members, b.members, "threads={t}");
        }
        // Every pop either merges, is stale, or restarts after a noise
        // trim — so pops bound merges + stale discards from above.
        assert!(on.clusters.len() <= 10);
        assert!(
            rec.counter(Counter::HeapPops)
                >= rec.counter(Counter::ClusterMerges) + rec.counter(Counter::HeapStalePops)
        );
        assert!(rec.counter(Counter::ClusterMerges) > 0);
        assert!(rec.counter(Counter::RepIndexQueries) > 0);
        counter_sets.push(counters(&rec));
    }
    assert_eq!(counter_sets[0], counter_sets[1], "threads 1 vs 2");
    assert_eq!(counter_sets[0], counter_sets[2], "threads 1 vs 7");
}

#[test]
fn batch_density_evaluation_metrics_parity() {
    let (data, est) = workload();
    let mut counter_sets = Vec::new();
    let baseline = batch_densities_obs(&est, &data, nz(1), &Recorder::disabled()).unwrap();
    for t in THREADS {
        let off = batch_densities_obs(&est, &data, nz(t), &Recorder::disabled()).unwrap();
        let rec = Recorder::enabled();
        let on = batch_densities_obs(&est, &data, nz(t), &rec).unwrap();
        assert_eq!(bits(&off), bits(&on), "threads={t}: on/off");
        assert_eq!(bits(&baseline), bits(&on), "threads={t}: vs serial");
        assert!(rec.counter(Counter::KdeKernelEvals) > 0);
        assert!(rec.counter(Counter::BatchTiles) > 0);
        counter_sets.push(counters(&rec));
    }
    assert_eq!(counter_sets[0], counter_sets[1], "threads 1 vs 2");
    assert_eq!(counter_sets[0], counter_sets[2], "threads 1 vs 7");
}

/// The obs pass counters must agree with `PassCounter`, which counts scans
/// from outside the pipeline — the §4.5 "at most two passes" bookkeeping.
#[test]
fn obs_passes_agree_with_pass_counter() {
    let (data, est) = workload();

    // Two-pass detector (§4.5).
    let counted = PassCounter::new(&data);
    let params = DbOutlierParams::new(0.02, 3).unwrap();
    let cfg = ApproxConfig {
        slack: 5.0,
        seed: 3,
        ..ApproxConfig::new(params)
    };
    let rec = Recorder::enabled();
    let report = approx_outliers_obs(&counted, &est, &cfg, &rec).unwrap();
    assert_eq!(counted.passes(), 2);
    assert_eq!(rec.counter(Counter::DatasetPasses), counted.passes() as u64);
    assert_eq!(report.passes, 2);

    // Two-pass sampler.
    let counted = PassCounter::new(&data);
    let rec = Recorder::enabled();
    let scfg = BiasedConfig::new(1000, 1.0).with_seed(8);
    density_biased_sample_obs(&counted, &est, &scfg, &rec).unwrap();
    assert_eq!(counted.passes(), 2);
    assert_eq!(rec.counter(Counter::DatasetPasses), counted.passes() as u64);

    // One-pass sampler: one pass over the primary source even though the
    // normalizer approximation also scans the (derived) kernel centers.
    let counted = PassCounter::new(&data);
    let rec = Recorder::enabled();
    one_pass_biased_sample_obs(&counted, &est, &scfg, &rec).unwrap();
    assert_eq!(counted.passes(), 1);
    assert_eq!(rec.counter(Counter::DatasetPasses), counted.passes() as u64);

    // Reservoir samplers.
    let counted = PassCounter::new(&data);
    let rec = Recorder::enabled();
    reservoir_sample_obs(&counted, 200, 4, &rec).unwrap();
    reservoir_sample_skip_obs(&counted, 200, 4, &rec).unwrap();
    assert_eq!(counted.passes(), 2);
    assert_eq!(rec.counter(Counter::DatasetPasses), counted.passes() as u64);
}
