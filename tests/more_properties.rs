//! Additional property-based suites: CF additivity, Haar transforms,
//! reservoir sampling, weighted K-means, and the noise-injection math.

use dbs_cluster::birch::Cf;
use dbs_core::Dataset;
use dbs_synth::noise::added_points_for_fraction;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CF additivity: merging CFs in any grouping yields the same summary
    /// (count, centroid, radius) as building it from all points at once.
    #[test]
    fn cf_additivity_any_grouping(
        points in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 2),
            2..24,
        ),
        split in 1usize..23,
    ) {
        let split = split.min(points.len() - 1);
        let mut left = Cf::from_point(&points[0]);
        for p in &points[1..split] {
            left.merge(&Cf::from_point(p));
        }
        let mut right = Cf::from_point(&points[split]);
        for p in &points[split + 1..] {
            right.merge(&Cf::from_point(p));
        }
        left.merge(&right);

        let mut all = Cf::from_point(&points[0]);
        for p in &points[1..] {
            all.merge(&Cf::from_point(p));
        }
        prop_assert!((left.count() - all.count()).abs() < 1e-9);
        for (a, b) in left.centroid().iter().zip(all.centroid()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
        prop_assert!((left.radius() - all.radius()).abs() < 1e-5);
    }

    /// Weighted CF of a point scales like `w` copies of the point.
    #[test]
    fn cf_weighted_point_matches_repetition(
        p in prop::collection::vec(-50.0f64..50.0, 3),
        w in 1usize..20,
    ) {
        let weighted = Cf::from_weighted_point(&p, w as f64);
        let mut repeated = Cf::from_point(&p);
        for _ in 1..w {
            repeated.merge(&Cf::from_point(&p));
        }
        prop_assert!((weighted.count() - repeated.count()).abs() < 1e-9);
        for (a, b) in weighted.centroid().iter().zip(repeated.centroid()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Reservoir sampling returns exactly min(b, n) distinct indices that
    /// all reference real points, for any stream length and seed.
    #[test]
    fn reservoir_size_and_validity(n in 1usize..400, b in 1usize..50, seed in 0u64..1000) {
        let mut ds = Dataset::new(1);
        for i in 0..n {
            ds.push(&[i as f64]).unwrap();
        }
        let s = dbs_sampling::reservoir_sample(&ds, b, seed).unwrap();
        prop_assert_eq!(s.len(), b.min(n));
        let mut idx = s.source_indices().to_vec();
        idx.sort_unstable();
        idx.dedup();
        prop_assert_eq!(idx.len(), b.min(n));
        prop_assert!(idx.iter().all(|&i| i < n));
    }

    /// Skip-ahead reservoir (Algorithm L) satisfies the same contract.
    #[test]
    fn reservoir_skip_size_and_validity(n in 1usize..400, b in 1usize..50, seed in 0u64..1000) {
        let mut ds = Dataset::new(1);
        for i in 0..n {
            ds.push(&[i as f64]).unwrap();
        }
        let s = dbs_sampling::reservoir_sample_skip(&ds, b, seed).unwrap();
        prop_assert_eq!(s.len(), b.min(n));
        let mut idx = s.source_indices().to_vec();
        idx.sort_unstable();
        idx.dedup();
        prop_assert_eq!(idx.len(), b.min(n));
    }

    /// Noise-injection arithmetic: adding `added_points_for_fraction`
    /// points really produces (to rounding) the requested final fraction.
    #[test]
    fn noise_fraction_arithmetic(n in 100usize..100_000, fraction in 0.0f64..0.9) {
        let add = added_points_for_fraction(n, fraction);
        let actual = add as f64 / (n + add) as f64;
        prop_assert!((actual - fraction).abs() < 1.0 / n as f64 + 1e-9,
            "requested {}, got {}", fraction, actual);
    }

    /// K-means with k = 1 returns exactly the weighted mean, for any
    /// weights.
    #[test]
    fn kmeans_single_cluster_is_weighted_mean(
        rows in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 2), 2..30),
        raw_weights in prop::collection::vec(0.1f64..10.0, 30),
    ) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let weights = &raw_weights[..rows.len()];
        let res = dbs_cluster::kmeans(&ds, weights, &dbs_cluster::KMeansConfig::new(1)).unwrap();
        let total: f64 = weights.iter().sum();
        for j in 0..2 {
            let want: f64 = rows
                .iter()
                .zip(weights)
                .map(|(r, &w)| r[j] * w)
                .sum::<f64>()
                / total;
            prop_assert!((res.centers[0][j] - want).abs() < 1e-6);
        }
    }

    /// The hierarchical clustering assignment table is always a partition
    /// of the input (clusters + noise), for arbitrary small datasets.
    #[test]
    fn hierarchical_assignments_partition(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 2), 5..80),
        k in 1usize..6,
    ) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let res = dbs_cluster::hierarchical_cluster(
            &ds,
            &dbs_cluster::HierarchicalConfig::paper_defaults(k),
        )
        .unwrap();
        let mut covered = vec![0usize; ds.len()];
        for (ci, c) in res.clusters.iter().enumerate() {
            prop_assert!(!c.representatives.is_empty());
            for &m in &c.members {
                covered[m] += 1;
                prop_assert_eq!(res.assignments[m], ci);
            }
        }
        for (i, &c) in covered.iter().enumerate() {
            if c == 0 {
                prop_assert_eq!(res.assignments[i], dbs_cluster::NOISE);
            } else {
                prop_assert_eq!(c, 1);
            }
        }
    }
}
