//! End-to-end checks of the estimator → sampler chain across crates.

use dbs_core::{BoundingBox, PointSource};
use dbs_density::{DensityEstimator, GridEstimator, KdeConfig, KernelDensityEstimator};
use dbs_integration_tests::{clustered, clustered_noisy, noise_share};
use dbs_sampling::{
    bernoulli_sample, density_biased_sample, grid_biased_sample, one_pass_biased_sample,
    BiasedConfig, GridBiasedConfig,
};

fn kde(data: &dbs_core::Dataset, centers: usize, seed: u64) -> KernelDensityEstimator {
    let cfg = KdeConfig {
        num_centers: centers,
        domain: Some(BoundingBox::unit(data.dim())),
        seed,
        ..Default::default()
    };
    KernelDensityEstimator::fit_dataset(data, &cfg).unwrap()
}

#[test]
fn positive_exponent_reduces_noise_share() {
    let synth = clustered_noisy(30_000, 2, 0.5, 1);
    let est = kde(&synth.data, 500, 2);
    let (biased, _) =
        density_biased_sample(&synth.data, &est, &BiasedConfig::new(600, 1.0).with_seed(3))
            .unwrap();
    let uniform = bernoulli_sample(&synth.data, 600, 3).unwrap();
    let b_share = noise_share(&synth, biased.source_indices());
    let u_share = noise_share(&synth, uniform.source_indices());
    assert!(
        b_share < 0.75 * u_share,
        "biased noise share {b_share} should be well below uniform {u_share}"
    );
}

#[test]
fn negative_exponent_raises_sparse_cluster_share() {
    // Clusters only (no noise): with a < 0 the sparsest cluster gains
    // sample share relative to uniform sampling.
    let synth = {
        use dbs_synth::rect::{generate, RectConfig, SizeProfile};
        let cfg = RectConfig {
            total_points: 30_000,
            ..RectConfig::paper_standard(2, 4)
        };
        generate(&cfg, &SizeProfile::VariableDensity { ratio: 10.0 }).unwrap()
    };
    let est = kde(&synth.data, 500, 5);
    let (biased, _) = density_biased_sample(
        &synth.data,
        &est,
        &BiasedConfig::new(1500, -0.5).with_seed(6),
    )
    .unwrap();
    let sizes = synth.cluster_sizes();
    // Cluster 0 is the sparsest by construction.
    let biased_share = biased
        .source_indices()
        .iter()
        .filter(|&&i| synth.labels[i] == 0)
        .count() as f64
        / biased.len() as f64;
    let population_share = sizes[0] as f64 / synth.len() as f64;
    assert!(
        biased_share > 1.3 * population_share,
        "sparse cluster share {biased_share} vs population {population_share}"
    );
}

#[test]
fn horvitz_thompson_estimates_dataset_size_across_samplers() {
    let synth = clustered(20_000, 2, 7);
    let est = kde(&synth.data, 500, 8);
    for a in [-0.5, 0.0, 1.0] {
        let (s, _) =
            density_biased_sample(&synth.data, &est, &BiasedConfig::new(1000, a).with_seed(9))
                .unwrap();
        let ht = s.estimated_source_size();
        let rel = (ht - 20_000.0).abs() / 20_000.0;
        assert!(rel < 0.25, "a={a}: HT estimate {ht}");
    }
}

#[test]
fn one_pass_and_two_pass_agree_statistically() {
    let synth = clustered_noisy(20_000, 2, 0.3, 10);
    let est = kde(&synth.data, 1000, 11);
    let cfg = BiasedConfig::new(800, 1.0).with_seed(12);
    let (two, s2) = density_biased_sample(&synth.data, &est, &cfg).unwrap();
    let (one, s1) = one_pass_biased_sample(&synth.data, &est, &cfg).unwrap();
    assert_eq!(s2.passes, 2);
    assert_eq!(s1.passes, 1);
    let k_rel = (s1.normalizer_k - s2.normalizer_k).abs() / s2.normalizer_k;
    assert!(k_rel < 0.1, "normalizer mismatch {k_rel}");
    let share2 = noise_share(&synth, two.source_indices());
    let share1 = noise_share(&synth, one.source_indices());
    assert!(
        (share1 - share2).abs() < 0.08,
        "noise shares {share1} vs {share2}"
    );
}

#[test]
fn grid_estimator_backend_matches_kde_direction() {
    // Any DensityEstimator backend must produce the same *direction* of
    // bias through the same sampler.
    let synth = clustered_noisy(20_000, 2, 0.5, 13);
    let grid = GridEstimator::fit(&synth.data, BoundingBox::unit(2), 24).unwrap();
    assert_eq!(grid.dataset_size(), synth.len() as f64);
    let (biased, _) = density_biased_sample(
        &synth.data,
        &grid,
        &BiasedConfig::new(600, 1.0).with_seed(14),
    )
    .unwrap();
    let uniform = bernoulli_sample(&synth.data, 600, 14).unwrap();
    assert!(
        noise_share(&synth, biased.source_indices())
            < noise_share(&synth, uniform.source_indices())
    );
}

#[test]
fn palmer_faloutsos_sampler_oversamples_sparse_cells() {
    let synth = {
        use dbs_synth::rect::{generate, RectConfig, SizeProfile};
        let cfg = RectConfig {
            total_points: 30_000,
            ..RectConfig::paper_standard(2, 15)
        };
        generate(&cfg, &SizeProfile::VariableDensity { ratio: 10.0 }).unwrap()
    };
    let (s, _) = grid_biased_sample(
        &synth.data,
        &GridBiasedConfig::new(1500, -0.5).with_seed(16),
    )
    .unwrap();
    let sizes = synth.cluster_sizes();
    let share0 = s
        .source_indices()
        .iter()
        .filter(|&&i| synth.labels[i] == 0)
        .count() as f64
        / s.len() as f64;
    let pop0 = sizes[0] as f64 / synth.len() as f64;
    assert!(
        share0 > pop0,
        "sparse cluster share {share0} vs population {pop0}"
    );
}

#[test]
fn sampler_indices_always_reference_source_points() {
    let synth = clustered(5_000, 3, 17);
    let est = kde(&synth.data, 300, 18);
    let (s, _) = density_biased_sample(
        &synth.data,
        &est,
        &BiasedConfig::new(250, 0.5).with_seed(19),
    )
    .unwrap();
    assert!(PointSource::len(&synth.data) >= s.len());
    for (pos, &i) in s.source_indices().iter().enumerate() {
        assert_eq!(s.points().point(pos), synth.data.point(i));
    }
}
