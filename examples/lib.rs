//! Shared helpers for the example binaries.
//!
//! The examples are the "user's view" of the library: each one is a small,
//! self-contained program using only the public APIs of the workspace
//! crates. Run them with `cargo run -p dbs-examples --bin <name>`:
//!
//! * `quickstart` — fit a KDE, draw a biased sample, cluster it.
//! * `noisy_clusters` — the a > 0 regime: find dense clusters under 60 %
//!   noise where uniform sampling fails.
//! * `small_clusters` — the a < 0 regime: rescue small sparse clusters that
//!   a uniform sample misses.
//! * `outlier_hunt` — DB(p,k) outlier detection with density pruning.
//! * `geo_postal` — metros-vs-rural-noise on the simulated NorthEast data.
//! * `streaming_file` — the same pipeline over an on-disk dataset,
//!   demonstrating the pass-based streaming API.

/// Renders a 2-d dataset as a coarse ASCII density plot — handy for seeing
/// what a sample looks like without a plotting stack.
pub fn ascii_plot(points: impl Iterator<Item = (f64, f64)>, width: usize, height: usize) -> String {
    let mut grid = vec![0usize; width * height];
    for (x, y) in points {
        if !(0.0..=1.0).contains(&x) || !(0.0..=1.0).contains(&y) {
            continue;
        }
        let cx = ((x * width as f64) as usize).min(width - 1);
        let cy = ((y * height as f64) as usize).min(height - 1);
        grid[cy * width + cx] += 1;
    }
    let max = grid.iter().copied().max().unwrap_or(0).max(1);
    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    let mut out = String::with_capacity((width + 1) * height);
    // y grows upward: print top row first.
    for row in (0..height).rev() {
        for col in 0..width {
            let v = grid[row * width + col];
            let idx = if v == 0 {
                0
            } else {
                1 + (v * (shades.len() - 2)) / max
            };
            out.push(shades[idx.min(shades.len() - 1)]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_marks_dense_cells() {
        let pts = vec![(0.1, 0.1); 50]
            .into_iter()
            .chain(std::iter::once((0.9, 0.9)));
        let s = ascii_plot(pts, 10, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 10);
        // (0.1, 0.1) lands in cell row 1 / col 1; rows print top-first, so
        // grid row 1 is the second line from the bottom. The dense cell
        // renders as the darkest shade, the single point top-right as a
        // light one.
        assert_eq!(lines[8].chars().nth(1).unwrap(), '@');
        assert_ne!(lines[0].chars().nth(9).unwrap(), ' ');
    }

    #[test]
    fn out_of_range_points_are_skipped() {
        let s = ascii_plot(vec![(2.0, 2.0), (-1.0, 0.5)].into_iter(), 4, 4);
        assert!(s.chars().all(|c| c == ' ' || c == '\n'));
    }
}
