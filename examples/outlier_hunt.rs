//! DB(p,k) outlier detection with density pruning (§3.2 of the paper).
//!
//! Plants isolated points on a clustered background, then finds them with
//! one estimator pass + two dataset passes, comparing against the exact
//! nested-loop detector.
//!
//! ```text
//! cargo run -p dbs-examples --bin outlier_hunt
//! ```

use std::time::Instant;

use dbs_core::BoundingBox;
use dbs_density::{KdeConfig, KernelDensityEstimator};
use dbs_outlier::{approx_outliers, nested_loop_outliers, ApproxConfig, DbOutlierParams};
use dbs_synth::outliers::planted_outliers;
use dbs_synth::rect::RectConfig;

fn main() -> dbs_core::Result<()> {
    let background = RectConfig {
        total_points: 20_000,
        ..RectConfig::paper_standard(2, 31)
    };
    let planted = planted_outliers(&background, 8, 0.06, 32)?;
    let data = &planted.synth.data;
    println!(
        "dataset: {} points, {} planted outliers (isolation {})",
        data.len(),
        planted.outlier_indices.len(),
        planted.isolation
    );

    let params = DbOutlierParams::new(0.03, 3)?;
    println!(
        "looking for DB(p={}, k={}) outliers",
        params.max_neighbors, params.radius
    );

    // Estimator pass.
    let t0 = Instant::now();
    let kde = KernelDensityEstimator::fit_dataset(
        data,
        &KdeConfig {
            domain: Some(BoundingBox::unit(2)),
            ..KdeConfig::with_centers(1000)
        },
    )?;
    println!("estimator fitted in {:?}", t0.elapsed());

    // Two more passes: prune by expected neighbors, verify survivors. A
    // generous slack keeps outliers that sit near dense clusters (where
    // kernel smoothing inflates their expected neighborhood) in the
    // candidate set; the verification pass removes any false candidates.
    let t1 = Instant::now();
    let report = approx_outliers(
        data,
        &kde,
        &ApproxConfig {
            slack: 25.0,
            ..ApproxConfig::new(params)
        },
    )?;
    let approx_time = t1.elapsed();
    println!(
        "approx detector: {} outliers from {} candidates in {} passes, {:?}",
        report.outliers.len(),
        report.candidates,
        report.passes,
        approx_time
    );

    // Exact baseline.
    let t2 = Instant::now();
    let exact = nested_loop_outliers(data, &params);
    let exact_time = t2.elapsed();
    println!(
        "nested loop:     {} outliers, {:?}",
        exact.len(),
        exact_time
    );

    let recall = report.outliers.iter().filter(|o| exact.contains(o)).count();
    println!(
        "\nagreement: {recall}/{} exact outliers recovered; planted outliers all found: {}",
        exact.len(),
        planted
            .outlier_indices
            .iter()
            .all(|i| report.outliers.contains(i))
    );
    for &i in &report.outliers {
        let p = data.point(i);
        let planted_tag = if planted.outlier_indices.contains(&i) {
            " (planted)"
        } else {
            ""
        };
        println!("  outlier #{i} at ({:.3}, {:.3}){planted_tag}", p[0], p[1]);
    }
    Ok(())
}
