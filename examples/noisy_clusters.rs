//! The a > 0 regime: clusters buried in heavy noise.
//!
//! 60 % of the dataset is uniform background noise. A uniform sample
//! carries the noise straight into the clustering; the density-biased
//! sample with a = 1 suppresses it (dense regions are oversampled), so the
//! clusters survive. This is Figure 4 of the paper as a demo.
//!
//! ```text
//! cargo run -p dbs-examples --bin noisy_clusters
//! ```

use dbs_cluster::{clusters_found, hierarchical_cluster, EvalConfig, HierarchicalConfig};
use dbs_core::BoundingBox;
use dbs_density::{KdeConfig, KernelDensityEstimator};
use dbs_sampling::{bernoulli_sample, density_biased_sample, BiasedConfig};
use dbs_synth::noise::with_noise_fraction;
use dbs_synth::rect::{generate, RectConfig, SizeProfile};
use dbs_synth::NOISE_LABEL;

fn main() -> dbs_core::Result<()> {
    let clean = generate(
        &RectConfig {
            total_points: 50_000,
            ..RectConfig::paper_standard(2, 11)
        },
        &SizeProfile::VariableDensity { ratio: 4.0 },
    )?;
    let noisy = with_noise_fraction(clean, 0.6, 12);
    println!(
        "dataset: {} points, {} clusters, {:.0}% noise",
        noisy.len(),
        noisy.num_clusters(),
        noisy.noise_fraction() * 100.0
    );

    let b = noisy.len() / 50; // 2% sample
    let eval = EvalConfig {
        margin: 0.01,
        ..Default::default()
    };
    let hc = HierarchicalConfig::paper_defaults(10);

    // Density-biased sample, a = 1.
    let kde = KernelDensityEstimator::fit_dataset(
        &noisy.data,
        &KdeConfig {
            domain: Some(BoundingBox::unit(2)),
            ..KdeConfig::with_centers(1000)
        },
    )?;
    let (biased, _) = density_biased_sample(&noisy.data, &kde, &BiasedConfig::new(b, 1.0))?;
    let noise_in_biased = biased
        .source_indices()
        .iter()
        .filter(|&&i| noisy.labels[i] == NOISE_LABEL)
        .count();
    let found_biased = clusters_found(
        &hierarchical_cluster(biased.points(), &hc)?.clusters,
        &noisy.regions,
        &eval,
    );

    // Uniform sample, same size.
    let uniform = bernoulli_sample(&noisy.data, b, 13)?;
    let noise_in_uniform = uniform
        .source_indices()
        .iter()
        .filter(|&&i| noisy.labels[i] == NOISE_LABEL)
        .count();
    let found_uniform = clusters_found(
        &hierarchical_cluster(uniform.points(), &hc)?.clusters,
        &noisy.regions,
        &eval,
    );

    println!(
        "\nbiased sample (a=1):  {} points, {:.0}% noise, {found_biased}/10 clusters found",
        biased.len(),
        100.0 * noise_in_biased as f64 / biased.len() as f64
    );
    println!(
        "uniform sample:       {} points, {:.0}% noise, {found_uniform}/10 clusters found",
        uniform.len(),
        100.0 * noise_in_uniform as f64 / uniform.len() as f64
    );

    println!("\nbiased sample plot (noise mostly gone):");
    print!(
        "{}",
        dbs_examples::ascii_plot(biased.points().iter().map(|p| (p[0], p[1])), 60, 20)
    );
    println!("uniform sample plot (noise everywhere):");
    print!(
        "{}",
        dbs_examples::ascii_plot(uniform.points().iter().map(|p| (p[0], p[1])), 60, 20)
    );
    Ok(())
}
