//! The a < 0 regime: small sparse clusters next to huge dense ones.
//!
//! Five large dense clusters hold 95 % of the points; five small sparse
//! clusters hold 1 % each. A uniform 1 % sample sees 2-3 points per small
//! cluster and loses them; a = −0.25 biased sampling boosts the sparse
//! regions (while Lemma 1 keeps the dense ones dense) and recovers them.
//! This is Figure 5 of the paper as a demo.
//!
//! ```text
//! cargo run -p dbs-examples --bin small_clusters
//! ```

use dbs_cluster::{clusters_found, hierarchical_cluster, EvalConfig, HierarchicalConfig};
use dbs_core::BoundingBox;
use dbs_density::{KdeConfig, KernelDensityEstimator};
use dbs_sampling::{bernoulli_sample, density_biased_sample, BiasedConfig};
use dbs_synth::noise::with_noise_fraction;
use dbs_synth::rect::{generate, RectConfig, SizeProfile};

fn main() -> dbs_core::Result<()> {
    // 5 big clusters of 7600 points, 5 small ones of 400.
    let sizes = vec![7600, 7600, 7600, 7600, 7600, 400, 400, 400, 400, 400];
    let total = sizes.iter().sum();
    let clean = generate(
        &RectConfig {
            total_points: total,
            num_clusters: 10,
            volume_range: (0.006, 0.012),
            ..RectConfig::paper_standard(2, 21)
        },
        &SizeProfile::Explicit(sizes),
    )?;
    let synth = with_noise_fraction(clean, 0.1, 22);
    println!(
        "dataset: {} points; cluster sizes {:?}",
        synth.len(),
        synth.cluster_sizes()
    );

    let b = synth.len() / 50; // 2%
    let eval = EvalConfig {
        margin: 0.01,
        ..Default::default()
    };
    let hc = HierarchicalConfig::paper_defaults(10);

    let kde = KernelDensityEstimator::fit_dataset(
        &synth.data,
        &KdeConfig {
            domain: Some(BoundingBox::unit(2)),
            ..KdeConfig::with_centers(1000)
        },
    )?;

    for a in [-0.5, -0.25] {
        let (s, _) = density_biased_sample(&synth.data, &kde, &BiasedConfig::new(b, a))?;
        // Points per small cluster in the sample.
        let mut small_counts = vec![0usize; 5];
        for &i in s.source_indices() {
            let l = synth.labels[i];
            if (5..10).contains(&l) {
                small_counts[l - 5] += 1;
            }
        }
        let found = clusters_found(
            &hierarchical_cluster(s.points(), &hc)?.clusters,
            &synth.regions,
            &eval,
        );
        println!(
            "biased a={a:>5}: {} points, small-cluster sample counts {:?}, {found}/10 found",
            s.len(),
            small_counts
        );
    }

    let u = bernoulli_sample(&synth.data, b, 23)?;
    let mut small_counts = vec![0usize; 5];
    for &i in u.source_indices() {
        let l = synth.labels[i];
        if (5..10).contains(&l) {
            small_counts[l - 5] += 1;
        }
    }
    let found = clusters_found(
        &hierarchical_cluster(u.points(), &hc)?.clusters,
        &synth.regions,
        &eval,
    );
    println!(
        "uniform:        {} points, small-cluster sample counts {:?}, {found}/10 found",
        u.len(),
        small_counts
    );
    Ok(())
}
