//! The paper's real-data story (§4.3) on the simulated NorthEast dataset:
//! three metropolitan areas buried in rural scatter. A 1 % biased sample
//! (a = 1) keeps the metros; a uniform sample drowns them in rural noise.
//!
//! ```text
//! cargo run -p dbs-examples --bin geo_postal
//! ```

use dbs_cluster::{clusters_found, hierarchical_cluster, EvalConfig, HierarchicalConfig};
use dbs_core::BoundingBox;
use dbs_density::{KdeConfig, KernelDensityEstimator};
use dbs_sampling::{bernoulli_sample, density_biased_sample, BiasedConfig};
use dbs_synth::geo::northeast_like;

fn main() -> dbs_core::Result<()> {
    let ne = northeast_like(41);
    println!(
        "NorthEast-like dataset: {} points, {} metros, {:.0}% background",
        ne.len(),
        ne.num_clusters(),
        ne.noise_fraction() * 100.0
    );

    let b = ne.len() / 100; // 1% sample, per the practitioner's guide
    let k = ne.num_clusters() + 2; // a little slack for secondary centers
    let eval = EvalConfig {
        margin: 0.01,
        ..Default::default()
    };
    let hc = HierarchicalConfig::paper_defaults(k);

    let kde = KernelDensityEstimator::fit_dataset(
        &ne.data,
        &KdeConfig {
            domain: Some(BoundingBox::unit(2)),
            ..KdeConfig::with_centers(1000)
        },
    )?;
    let (biased, _) = density_biased_sample(&ne.data, &kde, &BiasedConfig::new(b, 1.0))?;
    let found_biased = clusters_found(
        &hierarchical_cluster(biased.points(), &hc)?.clusters,
        &ne.regions,
        &eval,
    );

    let uniform = bernoulli_sample(&ne.data, b, 42)?;
    let found_uniform = clusters_found(
        &hierarchical_cluster(uniform.points(), &hc)?.clusters,
        &ne.regions,
        &eval,
    );

    let names = ["New York", "Philadelphia", "Boston"];
    println!("\nbiased a=1, 1% sample:  {found_biased}/3 metros found");
    println!("uniform,   1% sample:  {found_uniform}/3 metros found");
    println!("\nmetro ground truth:");
    for (name, region) in names.iter().zip(&ne.regions) {
        let c = region.center();
        println!("  {name}: center ({:.2}, {:.2})", c[0], c[1]);
    }

    println!("\nbiased sample (metros pop out):");
    print!(
        "{}",
        dbs_examples::ascii_plot(biased.points().iter().map(|p| (p[0], p[1])), 60, 20)
    );
    println!("uniform sample (rural scatter dominates):");
    print!(
        "{}",
        dbs_examples::ascii_plot(uniform.points().iter().map(|p| (p[0], p[1])), 60, 20)
    );
    Ok(())
}
