//! Quickstart: the whole pipeline in ~40 lines.
//!
//! 1. Generate a clustered dataset (you would load your own instead).
//! 2. Fit a kernel density estimator in one pass.
//! 3. Draw a density-biased sample (a = 1: oversample dense regions).
//! 4. Run the CURE-style hierarchical clustering on the sample.
//!
//! ```text
//! cargo run -p dbs-examples --bin quickstart
//! ```

use dbs_cluster::{hierarchical_cluster, HierarchicalConfig};
use dbs_core::BoundingBox;
use dbs_density::{KdeConfig, KernelDensityEstimator};
use dbs_sampling::{density_biased_sample, BiasedConfig};
use dbs_synth::rect::{generate, RectConfig, SizeProfile};

fn main() -> dbs_core::Result<()> {
    // A 100k-point dataset with 10 rectangular clusters in [0,1]^2.
    let synth = generate(&RectConfig::paper_standard(2, 42), &SizeProfile::Equal)?;
    println!(
        "dataset: {} points, {} true clusters",
        synth.len(),
        synth.num_clusters()
    );

    // One pass: 1000 kernel centers, Epanechnikov kernels, Scott bandwidth.
    let kde = KernelDensityEstimator::fit_dataset(
        &synth.data,
        &KdeConfig {
            domain: Some(BoundingBox::unit(2)),
            ..KdeConfig::with_centers(1000)
        },
    )?;
    println!(
        "estimator: {} centers, bandwidths {:?}",
        kde.centers().len(),
        kde.bandwidths()
    );

    // Two passes: normalize, then include x with probability ∝ f(x)^a.
    let (sample, stats) = density_biased_sample(
        &synth.data,
        &kde,
        &BiasedConfig::new(1000, 1.0).with_seed(7),
    )?;
    println!(
        "sample: {} points (target 1000), normalizer k = {:.1}, {} clipped",
        sample.len(),
        stats.normalizer_k,
        stats.clipped
    );

    // Cluster the sample with the paper's §4.2 settings.
    let clustering =
        hierarchical_cluster(sample.points(), &HierarchicalConfig::paper_defaults(10))?;
    println!("clustering: {} clusters found", clustering.clusters.len());
    for (i, c) in clustering.clusters.iter().enumerate() {
        println!(
            "  cluster {i}: {} sample points, mean ({:.3}, {:.3})",
            c.members.len(),
            c.mean[0],
            c.mean[1]
        );
    }

    println!("\nsample density plot:");
    let pts = sample.points().iter().map(|p| (p[0], p[1]));
    print!("{}", dbs_examples::ascii_plot(pts, 60, 24));
    Ok(())
}
