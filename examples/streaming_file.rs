//! The same pipeline over an on-disk dataset, using the streaming
//! [`dbs_core::io::FileSource`] — memory usage stays independent of the
//! dataset size, and the pass structure of the paper's algorithms (one
//! estimator pass, two sampling passes) maps one-to-one onto file scans.
//!
//! ```text
//! cargo run -p dbs-examples --bin streaming_file
//! ```

use dbs_core::io::{write_binary, FileSource};
use dbs_core::scan::PassCounter;
use dbs_core::PointSource;
use dbs_density::{KdeConfig, KernelDensityEstimator};
use dbs_sampling::{density_biased_sample, BiasedConfig};
use dbs_synth::rect::{generate, RectConfig, SizeProfile};

fn main() -> dbs_core::Result<()> {
    // Write a dataset to a temporary binary file, as if it were a large
    // external extract.
    let synth = generate(
        &RectConfig {
            total_points: 50_000,
            ..RectConfig::paper_standard(3, 51)
        },
        &SizeProfile::Equal,
    )?;
    let mut path = std::env::temp_dir();
    path.push("dbs_streaming_example.dbs1");
    write_binary(&path, &synth.data)?;
    println!("wrote {} points to {}", synth.len(), path.display());

    // Open it as a streaming source and count the passes the pipeline does.
    let file = FileSource::open(&path)?;
    let counted = PassCounter::new(&file);
    println!(
        "source: {} points, {} dimensions",
        counted.len(),
        counted.dim()
    );

    let kde = KernelDensityEstimator::fit(&counted, &KdeConfig::with_centers(1000))?;
    println!("estimator pass done ({} so far)", counted.passes());

    let (sample, stats) =
        density_biased_sample(&counted, &kde, &BiasedConfig::new(500, 1.0).with_seed(52))?;
    println!(
        "sampling done: {} points in the sample, {} file passes total \
         (1 estimator + {} sampler)",
        sample.len(),
        counted.passes(),
        stats.passes
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
