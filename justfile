# Development shortcuts. `just check` is the pre-commit gate.

# Format check + lints + tests, exactly as CI would run them.
check:
    cargo fmt --check
    cargo clippy --workspace -- -D warnings
    cargo test -q

# Apply formatting in place.
fmt:
    cargo fmt

# Full test suite with output.
test:
    cargo test --workspace

# Release build of every binary and bench.
build:
    cargo build --release --workspace --benches

# Run every benchmark; set CRITERION_JSON=<file> to capture JSON lines.
bench:
    cargo bench --workspace

# CURE merge-loop scaling: accelerated core vs retained reference loop.
# CURE_SCALING_FULL_REF=1 also runs the (slow) reference at 50k, as done
# for the recorded BENCH_cure_scaling.json.
bench-cure:
    CRITERION_JSON=BENCH_cure_scaling.json cargo bench -p dbs-bench --bench cure_scaling

# Regenerate the CI-sized versions of every paper figure/table.
experiments:
    cargo run --release -p dbs-experiments -- all

# Run the instrumented pipeline and emit a sample metrics JSON
# (deterministic counters + machine-dependent stage timings).
metrics:
    cargo run --release -p dbs-experiments -- metrics --metrics-out metrics_sample.json

# Partitioned / sample-fed CURE vs the single-phase quadratic loop at
# 50k/250k/1M points, recorded as BENCH_cure_partitioned.json (includes
# the 50k full baseline so the speedup is self-contained).
bench-cure-part:
    CRITERION_JSON=BENCH_cure_partitioned.json cargo bench -p dbs-bench --bench cure_partitioned

# Averaged-grid estimator A/B: fit + batch query vs KDE and hashed grid
# at d in {2,3,5}, 100k and 1M points. The recorded BENCH_agrid.json
# carries the d=5/100k agrid-vs-KDE query comparison (>=5x target).
bench-agrid:
    CRITERION_JSON=BENCH_agrid.json cargo bench -p dbs-bench --bench agrid

# High-dimension CURE merge-loop curve: tight 16-d (and 12-d) diagonal
# blobs, wall clock + merge-loop counters per size, plus the d=16/n=2000
# bit-parity proof against the reference loop. The recorded
# BENCH_cure_highdim.json holds the pre-candidate-cache cliff curve
# (CURE_HIGHDIM_PHASE=before, budget-capped) and the post-fix curve side
# by side; CURE_HIGHDIM_SMOKE=1 runs only the CI regression gate.
bench-cure-highdim:
    CRITERION_JSON=BENCH_cure_highdim.json cargo bench -p dbs-bench --bench cure_highdim

# Out-of-core proof: a 10M-point (16-d) sample-fed clustering run over
# read-backend shards with peak RSS measured against the raw dataset size
# (< 25% target), plus sharded-vs-in-memory wall times and the
# FileSource::scan A/B. Takes a few minutes on one core; drop
# SHARD_SCAN_FULL=1 for a 1M-point smoke version.
bench-shard:
    SHARD_SCAN_FULL=1 CRITERION_JSON=BENCH_shard_scan.json cargo bench -p dbs-bench --bench shard_scan

# Streaming sketch service: one-pass fit throughput and merge cost for the
# Count-Min density sketch, plus the >=1M-point bounded-memory proof that
# a biased sample drawn off the sketch matches the exact dense grid
# (allocation TV <= 0.05, size within 10%, normalizer within 25%),
# recorded as BENCH_stream_sketch.json.
bench-stream:
    CRITERION_JSON=BENCH_stream_sketch.json cargo bench -p dbs-bench --bench stream_sketch
